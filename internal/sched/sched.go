// Package sched provides the work-scheduling substrate that stands in for
// OpenMP in this reproduction: dynamic chunk scheduling over a shared atomic
// work pool (the paper's `schedule(dynamic, 2048)`), static and
// edge-balanced partitioning (§1's alternative strategies), a continuous
// round scheduler for barrier-free iteration (the `nowait` loops of the
// lock-free variants), and an instrumented barrier that measures per-worker
// wait time (used to regenerate Figure 1) and deterministically detects the
// deadlock a crashed participant causes in barrier-based algorithms.
package sched

import (
	"errors"
	"sync"
	"time"

	"dfpr/internal/avec"
)

// DefaultChunk is the vertex chunk size used throughout the paper (§5.1.2).
const DefaultChunk = 2048

// Pool is a dynamic scheduler over the index range [0, n): workers call Next
// until it reports done, each receiving the next chunk. It is the Go
// equivalent of an OpenMP `for schedule(dynamic, chunk)` work-sharing
// construct: any idle worker takes the next chunk, so load imbalance is
// bounded by one chunk per worker.
//
// Chunks are either uniform (fixed index count, NewPool) or edge-balanced
// (precomputed boundaries holding roughly equal total weight,
// NewPoolBounds): on power-law graphs a uniform vertex chunk can hold a
// single hub's worth of edges many times over, serialising the whole pass
// behind one worker, which is what degree-aware boundaries avoid.
type Pool struct {
	next    avec.Counter
	aborted avec.Counter // non-zero once Abort has been called
	n       int
	chunk   int
	bounds  []int // nil → uniform chunks of size chunk
}

// NewPool returns a dynamic chunk pool over [0, n) with uniform chunks. A
// non-positive chunk selects DefaultChunk.
func NewPool(n, chunk int) *Pool {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	return &Pool{n: n, chunk: chunk}
}

// NewPoolBounds returns a dynamic pool dispensing the precomputed chunks
// bounds[t]..bounds[t+1]; bounds must be ascending with bounds[0]=0 and
// bounds[len-1]=n (see BalancedBounds).
func NewPoolBounds(bounds []int) *Pool {
	n := 0
	if len(bounds) > 0 {
		n = bounds[len(bounds)-1]
	}
	return &Pool{n: n, chunk: DefaultChunk, bounds: bounds}
}

// Next returns the next chunk [lo, hi) and ok=true, or ok=false when the
// range is exhausted.
func (p *Pool) Next() (lo, hi int, ok bool) {
	if p.aborted.Load() != 0 {
		return 0, 0, false
	}
	t := int(p.next.Add(1)) - 1
	if p.bounds != nil {
		if t+1 >= len(p.bounds) {
			return 0, 0, false
		}
		return p.bounds[t], p.bounds[t+1], true
	}
	lo = t * p.chunk
	if lo >= p.n {
		return 0, 0, false
	}
	hi = lo + p.chunk
	if hi > p.n {
		hi = p.n
	}
	return lo, hi, true
}

// Reset rewinds the pool for another pass. It must not race with Next; in
// the barrier-based algorithms one worker resets between barrier phases.
// Reset does not clear an abort: an aborted pool stays drained.
func (p *Pool) Reset() { p.next.Store(0) }

// Abort permanently drains the pool: every subsequent (and concurrent) Next
// reports done, surviving Reset. It is how a context cancellation reaches
// workers blocked in chunk loops — safe to call from any goroutine, any
// number of times.
func (p *Pool) Abort() { p.aborted.Store(1) }

// Aborted reports whether Abort has been called.
func (p *Pool) Aborted() bool { return p.aborted.Load() != 0 }

// Chunk returns the configured uniform chunk size (advisory for bounds
// pools).
func (p *Pool) Chunk() int { return p.chunk }

// NumChunks returns the number of chunks a full pass dispenses.
func (p *Pool) NumChunks() int {
	if p.bounds != nil {
		return len(p.bounds) - 1
	}
	return (p.n + p.chunk - 1) / p.chunk
}

// Rounds is a continuous ticket scheduler for barrier-free iteration.
// Tickets are dispensed from a single global counter; ticket t maps to chunk
// t mod chunksPerRound of round t / chunksPerRound. Workers therefore flow
// from one pass ("iteration") into the next without ever waiting: a fast
// worker starts round r+1 while a slow or stalled worker is still inside
// round r, which is exactly the behaviour of the paper's top-level parallel
// block with `nowait` dynamic loops (Algorithm 2).
type Rounds struct {
	next           avec.Counter
	aborted        avec.Counter // non-zero once Abort has been called
	n              int
	chunk          int
	chunksPerRound uint64
	bounds         []int // nil → uniform chunks of size chunk
}

// NewRounds returns a continuous round scheduler over [0, n) with uniform
// chunks. A non-positive chunk selects DefaultChunk.
func NewRounds(n, chunk int) *Rounds {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	cpr := uint64((n + chunk - 1) / chunk)
	if cpr == 0 {
		cpr = 1
	}
	return &Rounds{n: n, chunk: chunk, chunksPerRound: cpr}
}

// NewRoundsBounds returns a continuous round scheduler dispensing the
// precomputed edge-balanced chunks bounds[c]..bounds[c+1] each round (see
// BalancedBounds).
func NewRoundsBounds(bounds []int) *Rounds {
	n := 0
	cpr := uint64(1)
	if len(bounds) > 0 {
		n = bounds[len(bounds)-1]
		if len(bounds) > 1 {
			cpr = uint64(len(bounds) - 1)
		}
	}
	return &Rounds{n: n, chunk: DefaultChunk, chunksPerRound: cpr, bounds: bounds}
}

// Next returns the next chunk [lo, hi) and the round it belongs to. Rounds
// increase without bound; callers bound iteration count themselves. After
// Abort, Next returns an empty chunk in round MaxUint64, which exceeds any
// caller's iteration bound and so terminates every worker's round loop.
func (r *Rounds) Next() (lo, hi int, round uint64) {
	if r.aborted.Load() != 0 {
		return 0, 0, ^uint64(0)
	}
	t := r.next.Add(1) - 1
	round = t / r.chunksPerRound
	c := int(t % r.chunksPerRound)
	if r.bounds != nil {
		if c+1 >= len(r.bounds) {
			return 0, 0, round
		}
		return r.bounds[c], r.bounds[c+1], round
	}
	lo = c * r.chunk
	hi = lo + r.chunk
	if hi > r.n {
		hi = r.n
	}
	return lo, hi, round
}

// ChunksPerRound returns the number of chunks in one full pass.
func (r *Rounds) ChunksPerRound() uint64 { return r.chunksPerRound }

// Abort permanently stops the ticket stream: every subsequent (and
// concurrent) Next reports round MaxUint64. Safe to call from any
// goroutine, any number of times.
func (r *Rounds) Abort() { r.aborted.Store(1) }

// Aborted reports whether Abort has been called.
func (r *Rounds) Aborted() bool { return r.aborted.Load() != 0 }

// Range is a half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// StaticRanges splits [0, n) into parties contiguous ranges of nearly equal
// vertex count (vertex-balanced static scheduling).
func StaticRanges(n, parties int) []Range {
	if parties < 1 {
		parties = 1
	}
	out := make([]Range, parties)
	for w := 0; w < parties; w++ {
		out[w] = Range{Lo: w * n / parties, Hi: (w + 1) * n / parties}
	}
	return out
}

// EdgeBalancedRanges splits [0, n) into parties contiguous ranges such that
// each range holds roughly the same total weight, where weight[v] is
// typically vertex v's degree. This is the paper's "edge-balanced" load
// balancing strategy (§1); it needs a pre-processing pass, which is why the
// paper favours vertex chunking.
func EdgeBalancedRanges(weight []int, parties int) []Range {
	n := len(weight)
	if parties < 1 {
		parties = 1
	}
	total := 0
	for _, w := range weight {
		total += w
	}
	out := make([]Range, 0, parties)
	target := float64(total) / float64(parties)
	lo, acc := 0, 0
	for v := 0; v < n; v++ {
		acc += weight[v]
		if float64(acc) >= target*float64(len(out)+1) && len(out) < parties-1 {
			out = append(out, Range{Lo: lo, Hi: v + 1})
			lo = v + 1
		}
	}
	out = append(out, Range{Lo: lo, Hi: n})
	for len(out) < parties {
		out = append(out, Range{Lo: n, Hi: n})
	}
	return out
}

// BalancedBounds splits [0, len(weight)) into chunk boundaries such that
// each chunk carries roughly target total weight (prefix-degree tickets):
// weight[v] is typically deg(v)+1, so chunks near a power-law hub hold few
// vertices and chunks in the long tail hold many, equalising per-chunk work
// where uniform vertex chunks serialise on the hub rows. A vertex whose own
// weight exceeds target gets a chunk of its own. The result always has
// bounds[0]=0 and bounds[len-1]=len(weight), suitable for NewPoolBounds and
// NewRoundsBounds.
func BalancedBounds(weight []int, target int) []int {
	n := len(weight)
	if target < 1 {
		target = 1
	}
	bounds := make([]int, 1, n/8+2)
	bounds[0] = 0
	acc := 0
	for v := 0; v < n; v++ {
		acc += weight[v]
		if acc >= target {
			bounds = append(bounds, v+1)
			acc = 0
		}
	}
	if bounds[len(bounds)-1] != n {
		bounds = append(bounds, n)
	}
	return bounds
}

// ErrBroken is returned by Barrier.Await when the barrier can never open
// because one or more participants crashed. It models the deadlock a
// barrier-based algorithm enters when a thread crash-stops (§3.2, Figure 3a)
// — detected deterministically rather than by hanging forever.
var ErrBroken = errors.New("sched: barrier broken: participant crashed, remaining workers would wait forever")

// Barrier is a reusable synchronization barrier for a fixed set of worker
// goroutines, instrumented to record how long each worker spends waiting for
// stragglers. Wait-time accounting regenerates Figure 1.
//
// Crash semantics: a crashed worker calls Crash instead of Await and never
// returns to the barrier. As soon as every surviving worker is blocked in
// Await, no arrival can ever complete the barrier, so Await returns
// ErrBroken to all of them — the deterministic equivalent of the infinite
// wait the paper describes.
type Barrier struct {
	parties int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	lost    int
	gen     uint64
	broken  bool

	waitNS []int64 // per-worker cumulative wait, guarded by mu
}

// NewBarrier returns a barrier for the given number of participants.
func NewBarrier(parties int) *Barrier {
	b := &Barrier{parties: parties, waitNS: make([]int64, parties)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks worker until all parties have arrived (or crashed, in which
// case it returns ErrBroken). The worker index is used only for wait-time
// attribution.
func (b *Barrier) Await(worker int) error {
	start := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return ErrBroken
	}
	b.arrived++
	if b.lost > 0 && b.arrived+b.lost >= b.parties {
		// Every survivor is here; the lost parties will never arrive.
		b.broken = true
		b.cond.Broadcast()
		return ErrBroken
	}
	if b.arrived == b.parties {
		// Last arrival opens the barrier; it waited for nobody.
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	gen := b.gen
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	if worker >= 0 && worker < len(b.waitNS) {
		b.waitNS[worker] += time.Since(start).Nanoseconds()
	}
	if b.broken {
		return ErrBroken
	}
	return nil
}

// Crash marks one participant as permanently gone. If every surviving
// participant is already waiting, the barrier breaks immediately.
func (b *Barrier) Crash() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lost++
	if b.arrived+b.lost >= b.parties {
		b.broken = true
		b.cond.Broadcast()
	}
}

// Broken reports whether the barrier has been broken by a crash.
func (b *Barrier) Broken() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.broken
}

// WaitTime returns the cumulative time worker spent blocked in Await.
func (b *Barrier) WaitTime(worker int) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.waitNS[worker])
}

// TotalWait returns the cumulative wait time across all workers.
func (b *Barrier) TotalWait() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t int64
	for _, ns := range b.waitNS {
		t += ns
	}
	return time.Duration(t)
}

// Run starts `workers` goroutines executing fn(workerID) and blocks until
// all return. It is the moral equivalent of one top-level OpenMP parallel
// region.
func Run(workers int, fn func(worker int)) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
