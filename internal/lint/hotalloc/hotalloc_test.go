package hotalloc_test

import (
	"testing"

	"dfpr/internal/lint/analysistest"
	"dfpr/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "a")
}
