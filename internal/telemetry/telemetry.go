// Package telemetry is the module's zero-dependency metrics substrate: a
// registry of atomic counters, gauges and fixed-bucket histograms with a
// hand-rolled Prometheus text-exposition encoder (text/plain; version=0.0.4)
// and a tiny parser for closing the loop in tests and load harnesses.
//
// The design splits hot from cold. Observation — Counter.Inc, Counter.Add,
// Gauge.Set and Histogram.Observe — is the hot side: lock-free, zero
// allocations, annotated //dfpr:hotpath and enforced by the hotalloc
// analyzer, so instrumenting the ingest loop or the WAL append path costs a
// handful of atomic operations and never touches the garbage collector.
// Registration and scraping are the cold side: instruments are created once
// at startup (get-or-create, so two consumers of the same engine share
// series) with their full label set fixed, which is what keeps the hot side
// free of label hashing and map lookups.
//
// Pull-style instruments (CounterFunc, GaugeFunc) read a callback at scrape
// time — the right shape for state that already lives somewhere else, like
// an ingest queue depth behind its own mutex or a vertex count behind an
// atomic snapshot pointer.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value pair of a metric series. A series' label set is
// fixed at registration; there is no per-observation labelling (that would
// put a map lookup on the hot path).
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//dfpr:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//dfpr:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
//
//dfpr:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrease).
//
//dfpr:hotpath
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Bounds are upper bucket
// bounds in ascending order; a final +Inf bucket is implicit. Observation is
// a linear scan over the bounds (bucket counts are small by design — the
// scan beats a branchy binary search at these sizes) plus three atomic
// updates, with no locks and no allocation.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; per-bucket, non-cumulative
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
//
//dfpr:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the idiom for latency
// histograms: t0 := time.Now(); ...; h.ObserveSince(t0).
//
//dfpr:hotpath
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor — the standard shape for latency distributions, where resolution
// should be relative, not absolute.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("telemetry: bad exponential buckets (start %v, factor %v, n %d)", start, factor, n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// DefBuckets are general-purpose latency bounds in seconds, 100µs to ~26s in
// ×4 steps: wide enough to cover both a WAL append and a cold static rank on
// a big graph without per-metric tuning.
func DefBuckets() []float64 { return ExpBuckets(1e-4, 4, 10) }

// kind is a metric family's type, fixed by the first registration.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instrument of a family. Exactly one of the value
// fields is set, matching the family's kind (fn may stand in for a counter
// or gauge — a pull-style series read at scrape time).
type series struct {
	sig string // rendered sorted label set, "" or `{a="b",c="d"}`
	c   *Counter
	g   *Gauge
	h   *Histogram
	fn  func() float64
}

// family is one named metric with its help text, type, and series.
type family struct {
	name, help string
	kind       kind
	bounds     []float64 // histograms: the bounds every series shares
	series     []*series
	bySig      map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is get-or-create and safe for concurrent
// use; re-registering the same name+labels returns the same instrument,
// while re-registering a name as a different kind panics (a programming
// error, caught at startup). The zero value is not usable — call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter returns the counter registered under name with exactly the given
// labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getOrCreate(name, help, kindCounter, nil, labels, func() *series {
		return &series{c: &Counter{}}
	})
	return s.c
}

// CounterFunc registers a pull-style counter whose value is read from fn at
// scrape time. fn must be monotone non-decreasing and safe for concurrent
// use. Re-registering the same name+labels replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.getOrCreate(name, help, kindCounter, nil, labels, func() *series {
		return &series{}
	})
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Gauge returns the gauge registered under name with exactly the given
// labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getOrCreate(name, help, kindGauge, nil, labels, func() *series {
		return &series{g: &Gauge{}}
	})
	return s.g
}

// GaugeFunc registers a pull-style gauge whose value is read from fn at
// scrape time. fn must be safe for concurrent use (it runs on the scrape
// goroutine). Re-registering the same name+labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.getOrCreate(name, help, kindGauge, nil, labels, func() *series {
		return &series{}
	})
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name with exactly the
// given labels, creating it on first use with the given bucket bounds
// (ascending upper bounds, +Inf implicit; nil means DefBuckets). Every
// series of one family shares the first registration's bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending at %d", name, i))
		}
	}
	s := r.getOrCreate(name, help, kindHistogram, bounds, labels, func() *series {
		return nil // placeholder; bounds resolved against the family below
	})
	return s.h
}

// getOrCreate resolves (name, labels) to its series, creating family and
// series as needed. mk builds a fresh series for non-histogram kinds;
// histograms are built here so every series shares the family's bounds.
func (r *Registry) getOrCreate(name, help string, k kind, bounds []float64, labels []Label, mk func() *series) *series {
	if err := checkName(name); err != nil {
		panic("telemetry: " + err.Error())
	}
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, bounds: bounds, bySig: make(map[string]*series)}
		r.fams[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: %s already registered as a %s, not a %s", name, f.kind, k))
	}
	if s := f.bySig[sig]; s != nil {
		return s
	}
	var s *series
	if k == kindHistogram {
		h := &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
		s = &series{h: h}
	} else {
		s = mk()
	}
	s.sig = sig
	f.bySig[sig] = s
	// Publish a fresh sorted slice instead of sorting in place: a concurrent
	// scrape iterates its snapshot of the old slice, which is never mutated
	// after publication. Sorting by signature keeps the exposition
	// deterministic regardless of registration order.
	ns := make([]*series, len(f.series), len(f.series)+1)
	copy(ns, f.series)
	ns = append(ns, s)
	sort.Slice(ns, func(a, b int) bool { return ns[a].sig < ns[b].sig })
	f.series = ns
	return s
}

// checkName validates a metric or label name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > 0 && c >= '0' && c <= '9'
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// labelSig renders a sorted label set in its exposition spelling — the
// canonical series key: "" for no labels, `{a="b",c="d"}` otherwise.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Name < ls[b].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if err := checkName(l.Name); err != nil || l.Name == "le" {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Name))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatValue renders a sample value: integers without a fractional part,
// everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
