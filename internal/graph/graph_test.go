package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func mustValid(t *testing.T, g *CSR) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesBasics(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {0, 2}, {2, 1}, {3, 3}, {0, 1}}) // one duplicate
	mustValid(t, g)
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if got := g.Out(0); !reflect.DeepEqual(got, []uint32{1, 2}) {
		t.Errorf("Out(0) = %v", got)
	}
	if got := g.In(1); !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Errorf("In(1) = %v", got)
	}
	if g.OutDeg(0) != 2 || g.InDeg(1) != 2 || g.OutDeg(1) != 0 {
		t.Error("degree queries wrong")
	}
	if !g.HasEdge(3, 3) || g.HasEdge(1, 0) {
		t.Error("HasEdge wrong")
	}
	if g.DeadEnds() != 1 { // vertex 1 has no out-edges
		t.Errorf("DeadEnds = %d", g.DeadEnds())
	}
}

func TestFromEdgesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromEdges(2, []Edge{{0, 5}})
}

func TestEdgesRoundTripProperty(t *testing.T) {
	// Building a CSR from random edges and reading Edges() back must yield
	// exactly the deduplicated sorted edge set.
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%64 + 2
		m := int(mRaw) % 300
		rng := rand.New(rand.NewSource(seed))
		edges := make([]Edge, m)
		set := map[Edge]struct{}{}
		for i := range edges {
			e := Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
			edges[i] = e
			set[e] = struct{}{}
		}
		g := FromEdges(n, edges)
		if g.Validate() != nil {
			return false
		}
		got := g.Edges(nil)
		if len(got) != len(set) {
			return false
		}
		for _, e := range got {
			if _, ok := set[e]; !ok {
				return false
			}
		}
		// In-adjacency must be the exact transpose.
		for _, e := range got {
			found := false
			for _, u := range g.In(e.V) {
				if u == e.U {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInOutEdgeCountsAgree(t *testing.T) {
	g := FromEdges(50, randomEdges(50, 400, 1))
	mustValid(t, g)
	inSum, outSum := 0, 0
	for v := uint32(0); int(v) < g.N(); v++ {
		inSum += g.InDeg(v)
		outSum += g.OutDeg(v)
	}
	if inSum != outSum || inSum != g.M() {
		t.Errorf("in=%d out=%d m=%d", inSum, outSum, g.M())
	}
}

func randomEdges(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	return edges
}

func TestDynamicAddDel(t *testing.T) {
	d := NewDynamic(3)
	if !d.AddEdge(0, 1) || d.AddEdge(0, 1) {
		t.Error("AddEdge transition reporting wrong")
	}
	if d.M() != 1 || !d.HasEdge(0, 1) {
		t.Error("state after add wrong")
	}
	if !d.DelEdge(0, 1) || d.DelEdge(0, 1) {
		t.Error("DelEdge transition reporting wrong")
	}
	if d.M() != 0 || d.HasEdge(0, 1) {
		t.Error("state after delete wrong")
	}
}

func TestDynamicAdjacencyStaysSorted(t *testing.T) {
	d := NewDynamic(10)
	order := []uint32{7, 2, 9, 0, 4, 8, 1, 3}
	for _, v := range order {
		d.AddEdge(5, v)
	}
	row := d.Out(5)
	if !sort.SliceIsSorted(row, func(i, j int) bool { return row[i] < row[j] }) {
		t.Errorf("adjacency not sorted: %v", row)
	}
	d.DelEdge(5, 4)
	row = d.Out(5)
	for _, v := range row {
		if v == 4 {
			t.Error("deleted edge still present")
		}
	}
}

func TestApplyInverseRestoresGraphProperty(t *testing.T) {
	// Apply(del, ins) followed by Apply(ins, del) must restore the original
	// edge set — the foundation of the stability experiment.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		d := NewDynamic(n)
		for i := 0; i < 200; i++ {
			d.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		before := d.Snapshot()
		var del, ins []Edge
		for i := 0; i < 20; i++ {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if d.HasEdge(u, v) {
				del = append(del, Edge{u, v})
			} else {
				ins = append(ins, Edge{u, v})
			}
		}
		d.Apply(del, ins)
		d.Apply(ins, del)
		after := d.Snapshot()
		if before.M() != after.M() {
			return false
		}
		ea, eb := before.Edges(nil), after.Edges(nil)
		return reflect.DeepEqual(ea, eb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEnsureSelfLoopsRemovesDeadEnds(t *testing.T) {
	d := NewDynamic(5)
	d.AddEdge(0, 1)
	d.EnsureSelfLoops()
	g := d.Snapshot()
	mustValid(t, g)
	if g.DeadEnds() != 0 {
		t.Errorf("dead ends remain: %d", g.DeadEnds())
	}
	if g.M() != 6 { // 5 self-loops + 1 edge
		t.Errorf("m = %d", g.M())
	}
	// Idempotent.
	d.EnsureSelfLoops()
	if d.M() != 6 {
		t.Error("EnsureSelfLoops not idempotent")
	}
}

func TestSnapshotIsImmutableCopy(t *testing.T) {
	d := NewDynamic(3)
	d.AddEdge(0, 1)
	g := d.Snapshot()
	d.AddEdge(0, 2)
	d.DelEdge(0, 1)
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Error("snapshot mutated by later graph updates")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	d := NewDynamic(3)
	d.AddEdge(0, 1)
	c := d.Clone()
	c.AddEdge(1, 2)
	if d.HasEdge(1, 2) {
		t.Error("clone mutation leaked into original")
	}
	if c.M() != 2 || d.M() != 1 {
		t.Errorf("m mismatch: clone=%d orig=%d", c.M(), d.M())
	}
}

func TestDynamicFromCSRRoundTrip(t *testing.T) {
	g := FromEdges(20, randomEdges(20, 80, 9))
	d := DynamicFromCSR(g)
	g2 := d.Snapshot()
	if !reflect.DeepEqual(g.Edges(nil), g2.Edges(nil)) {
		t.Error("CSR→Dynamic→CSR changed the edge set")
	}
}

func TestUnionOut(t *testing.T) {
	g1 := FromEdges(6, []Edge{{0, 1}, {0, 3}, {0, 5}})
	g2 := FromEdges(6, []Edge{{0, 2}, {0, 3}, {0, 4}})
	var got []uint32
	UnionOut(g1, g2, 0, func(v uint32) { got = append(got, v) })
	want := []uint32{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UnionOut = %v, want %v", got, want)
	}
	// One side empty.
	got = got[:0]
	UnionOut(g1, g2, 1, func(v uint32) { got = append(got, v) })
	if len(got) != 0 {
		t.Errorf("UnionOut over empty rows = %v", got)
	}
}

func TestUnionOutVisitsEachOnceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		g1 := FromEdges(n, randomEdges(n, 60, seed))
		g2 := FromEdges(n, randomEdges(n, 60, seed+1))
		u := uint32(rng.Intn(n))
		seen := map[uint32]int{}
		UnionOut(g1, g2, u, func(v uint32) { seen[v]++ })
		want := map[uint32]bool{}
		for _, v := range g1.Out(u) {
			want[v] = true
		}
		for _, v := range g2.Out(u) {
			want[v] = true
		}
		if len(seen) != len(want) {
			return false
		}
		for v, c := range seen {
			if c != 1 || !want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}})
	mustValid(t, g)
	// Corrupt the adjacency: out-of-range neighbour.
	g.outAdj[0] = 99
	if g.Validate() == nil {
		t.Error("Validate missed out-of-range neighbour")
	}
}

func TestAvgOutDeg(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g.AvgOutDeg() != 1 {
		t.Errorf("AvgOutDeg = %v", g.AvgOutDeg())
	}
	empty := FromEdges(0, nil)
	if empty.AvgOutDeg() != 0 {
		t.Error("empty graph avg degree not 0")
	}
}
