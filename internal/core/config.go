// Package core implements the paper's PageRank algorithms for dynamic
// graphs: the Dynamic Frontier (DF) approach and every baseline it is
// evaluated against, each in a barrier-based (BB) and a lock-free (LF)
// variant:
//
//	StaticBB (Alg. 3)  StaticLF (Alg. 4)
//	NDBB     (Alg. 5)  NDLF     (Alg. 6)   — Naive-dynamic
//	DTBB     (Alg. 7)  DTLF     (Alg. 8)   — Dynamic Traversal
//	DFBB     (Alg. 1)  DFLF     (Alg. 2)   — Dynamic Frontier (the contribution)
//
// Barrier-based variants are synchronous (Jacobi): two rank vectors, an
// iteration barrier, an L∞ reduction and a swap per iteration. Lock-free
// variants are asynchronous (Gauss–Seidel): a single shared rank vector with
// atomic element access, per-vertex convergence flags, and no barrier
// anywhere — workers flow from one pass to the next via a continuous ticket
// scheduler and help each other through shared flag vectors, which is what
// makes them tolerate random thread delays and crash-stop failures (§4.4).
package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"time"

	"dfpr/internal/avec"
	"dfpr/internal/fault"
	"dfpr/internal/graph"
	"dfpr/internal/sched"
)

// Default parameter values from §5.1.2 of the paper.
const (
	DefaultAlpha   = 0.85
	DefaultTol     = 1e-10
	DefaultMaxIter = 500
)

// DefaultBlockBytes is the cache-block budget for the blocked rank sweeps:
// chunk boundaries are capped so one chunk's working set (adjacency plus
// the contributions it gathers) stays within this many bytes — sized for a
// typical last-level-cache slice, so the contrib reads a block triggers
// mostly stay resident while the block is swept.
const DefaultBlockBytes = 4 << 20

// blockBytesPerWeight converts chunk weight units (indeg+1 per vertex) to
// the bytes a pull sweep touches per unit: 4 B of adjacency and 8 B of
// gathered contribution per in-edge, plus ~4 B of per-vertex rank state
// amortised over the +1.
const blockBytesPerWeight = 16

// Config carries the tunable parameters shared by all algorithm variants.
// The zero value selects the paper's defaults.
type Config struct {
	// Alpha is the damping factor (default 0.85).
	Alpha float64
	// Tol is the iteration tolerance τ on the L∞ rank change (default 1e-10).
	Tol float64
	// FrontierTol is the frontier tolerance τ_f used by the DF variants to
	// decide when a rank change is large enough to mark out-neighbours as
	// affected. Default τ/1000 (§4.5).
	FrontierTol float64
	// MaxIter bounds the number of iterations (default 500).
	MaxIter int
	// Threads is the number of worker goroutines (default runtime.NumCPU()).
	Threads int
	// Chunk is the dynamic-scheduling chunk size (default 2048).
	Chunk int
	// Flags selects the flag-vector representation (default word-packed
	// bitset; avec.FlagBytes selects the byte-per-flag ablation variant).
	Flags avec.FlagKind
	// CountedConvergence switches the lock-free convergence check from the
	// paper's flag-vector scan to an O(1) atomic not-converged counter
	// (ablation; see DESIGN.md).
	CountedConvergence bool
	// UniformChunks restores the paper's fixed vertex-count chunks
	// (`schedule(dynamic, 2048)`). The default (false) uses edge-balanced
	// chunk boundaries instead: chunk cuts are placed by prefix in-degree so
	// every chunk carries roughly Chunk×avg-degree edges, which stops a
	// power-law hub row from serialising a whole pass behind one worker.
	// Either way Chunk scales the per-chunk work, so the chunk-size ablation
	// stays meaningful.
	UniformChunks bool
	// BlockBytes bounds the working set of one rank-loop chunk for the
	// cache-blocked sweeps: edge-balanced chunk boundaries are additionally
	// capped so a chunk's adjacency plus gathered contributions fit in this
	// many bytes, and within a chunk the affected frontier is visited in
	// sorted order via word-at-a-time flag scans (sequential contrib reads
	// instead of per-vertex probes). 0 selects DefaultBlockBytes; negative
	// disables blocking entirely and restores the probe-per-vertex loop.
	BlockBytes int
	// PruneFrontier removes a vertex from the DF affected set once its rank
	// change falls within the iteration tolerance (the "DF with pruning"
	// refinement from the paper's companion work). A pruned vertex is
	// re-marked if a neighbour's rank later moves beyond the frontier
	// tolerance, so convergence is unaffected; what changes is that
	// long-converged frontier vertices stop being recomputed every pass.
	// Honoured by the lock-free variants (whose per-vertex convergence
	// flags close the prune/re-mark race; see lf.go) and by TraceDF;
	// barrier-based variants ignore it. Default off — the paper's DF keeps
	// vertices affected once marked.
	PruneFrontier bool
	// Fault describes delays/crashes to inject (§5.1.6). The zero Plan
	// injects nothing.
	Fault fault.Plan

	// seedKernel switches the engines to the uncached seed kernels. It is
	// package-private: only the equivalence tests set it, to pin the
	// contribution-cached kernels against the original arithmetic.
	seedKernel bool
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = DefaultAlpha
	}
	if c.Tol <= 0 {
		c.Tol = DefaultTol
	}
	if c.FrontierTol <= 0 {
		c.FrontierTol = c.Tol / 1000
	}
	if c.MaxIter <= 0 {
		c.MaxIter = DefaultMaxIter
	}
	if c.Threads <= 0 {
		c.Threads = runtime.NumCPU()
	}
	if c.Chunk <= 0 {
		c.Chunk = 2048
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = DefaultBlockBytes
	}
	return c
}

// blocked reports whether the cache-blocked sweep path is enabled. The
// config must have passed withDefaults.
func (c Config) blocked() bool { return c.BlockBytes > 0 }

// Result reports the outcome of one algorithm run.
type Result struct {
	// Ranks is the final PageRank vector.
	Ranks []float64
	// Iterations is the number of iterations executed (for lock-free
	// variants: the highest pass index any worker completed, plus one).
	Iterations int
	// Converged reports whether the tolerance was met before MaxIter.
	Converged bool
	// CrashedWorkers is the number of workers that crash-stopped.
	CrashedWorkers int
	// Elapsed is the wall-clock time of the run, excluding input
	// construction (the paper excludes allocation; we start the clock after
	// vector allocation and initialisation, §5.1.5).
	Elapsed time.Duration
	// BarrierWait is the cumulative time workers spent blocked at iteration
	// barriers (zero for lock-free variants). Regenerates Figure 1.
	BarrierWait time.Duration
	// SweepBlocks is the number of rank-loop chunks workers fetched over the
	// whole run — the unit the cache-blocked scheduler dispatches. Feeds the
	// dfpr_rank_sweep_block_scheduled_total counter.
	SweepBlocks int64
	// FrontierScanned is the number of affected-frontier vertices located by
	// the sorted word-at-a-time flag scans of the blocked sweeps (zero when
	// blocking is disabled or the variant has no frontier). Feeds the
	// dfpr_rank_sweep_block_frontier_total counter.
	FrontierScanned int64
	// Err is non-nil when the run could not complete — notably
	// sched.ErrBroken when a barrier-based variant deadlocks because a
	// worker crashed, or ErrAllCrashed when every lock-free worker died.
	Err error
}

// ErrAllCrashed is returned when every worker crash-stopped before
// convergence; with no survivor there is no thread left to guarantee
// progress (lock-freedom assumes at least one live thread).
var ErrAllCrashed = errors.New("core: all workers crashed before convergence")

// ErrCanceled is the Result.Err terminal state of a run aborted by its
// context before convergence. It is distinct from the failure states
// (sched.ErrBroken for a deadlocked barrier, ErrAllCrashed for a dead
// lock-free run): a canceled run stopped because the caller asked it to,
// with every worker goroutine joined before the Result is returned.
var ErrCanceled = errors.New("core: run canceled by context")

// Algo identifies one of the eight algorithm variants.
type Algo int

// The eight algorithm variants, in the paper's naming.
const (
	AlgoStaticBB Algo = iota
	AlgoStaticLF
	AlgoNDBB
	AlgoNDLF
	AlgoDTBB
	AlgoDTLF
	AlgoDFBB
	AlgoDFLF
)

// Algos lists all variants in presentation order (matches Figure 5/7 legends).
var Algos = []Algo{AlgoStaticBB, AlgoNDBB, AlgoDFBB, AlgoStaticLF, AlgoNDLF, AlgoDFLF, AlgoDTBB, AlgoDTLF}

// String returns the paper's name for the variant.
func (a Algo) String() string {
	switch a {
	case AlgoStaticBB:
		return "StaticBB"
	case AlgoStaticLF:
		return "StaticLF"
	case AlgoNDBB:
		return "NDBB"
	case AlgoNDLF:
		return "NDLF"
	case AlgoDTBB:
		return "DTBB"
	case AlgoDTLF:
		return "DTLF"
	case AlgoDFBB:
		return "DFBB"
	case AlgoDFLF:
		return "DFLF"
	default:
		return "unknown"
	}
}

// LockFree reports whether the variant is barrier-free.
func (a Algo) LockFree() bool {
	switch a {
	case AlgoStaticLF, AlgoNDLF, AlgoDTLF, AlgoDFLF:
		return true
	}
	return false
}

// Dynamic reports whether the variant consumes a previous rank vector.
func (a Algo) Dynamic() bool { return a != AlgoStaticBB && a != AlgoStaticLF }

// ParseAlgo resolves a variant by its paper name, case-insensitively.
func ParseAlgo(s string) (Algo, bool) {
	for _, a := range Algos {
		if strings.EqualFold(a.String(), s) {
			return a, true
		}
	}
	return 0, false
}

// AlgoNames returns the paper names of all variants in presentation order,
// for listing valid values in flag and option error messages.
func AlgoNames() []string {
	names := make([]string, len(Algos))
	for i, a := range Algos {
		names[i] = a.String()
	}
	return names
}

// Input bundles the arguments of a dynamic-PageRank invocation. Static
// variants use only GNew; ND additionally uses Prev; DT and DF use
// everything.
type Input struct {
	// GOld is the previous snapshot G^{t-1} (may be nil for static/ND runs).
	GOld *graph.CSR
	// GNew is the current snapshot G^t.
	GNew *graph.CSR
	// Del and Ins are the batch update Δt⁻ and Δt⁺.
	Del, Ins []graph.Edge
	// Prev is the previous rank vector R^{t-1} (ignored by static variants).
	Prev []float64
}

// Run dispatches to the requested algorithm variant without cancellation
// (equivalent to RunCtx with a background context).
func Run(a Algo, in Input, cfg Config) Result {
	return RunCtx(context.Background(), a, in, cfg)
}

// RunCtx dispatches to the requested algorithm variant under a context.
// When ctx is canceled (or its deadline passes) before the run converges,
// workers stop taking work, every goroutine exits, and the Result carries
// ErrCanceled — the run's output vector must then be discarded, as a
// canceled pass may have computed only part of an iteration.
func RunCtx(ctx context.Context, a Algo, in Input, cfg Config) Result {
	switch a {
	case AlgoStaticBB:
		return runBB(ctx, vStatic, Input{GNew: in.GNew}, cfg)
	case AlgoStaticLF:
		return runLF(ctx, vStatic, Input{GNew: in.GNew}, cfg)
	case AlgoNDBB:
		return runBB(ctx, vND, Input{GNew: in.GNew, Prev: in.Prev}, cfg)
	case AlgoNDLF:
		return runLF(ctx, vND, Input{GNew: in.GNew, Prev: in.Prev}, cfg)
	case AlgoDTBB:
		return runBB(ctx, vDT, in, cfg)
	case AlgoDTLF:
		return runLF(ctx, vDT, in, cfg)
	case AlgoDFBB:
		return runBB(ctx, vDF, in, cfg)
	case AlgoDFLF:
		return runLF(ctx, vDF, in, cfg)
	default:
		return Result{Err: errors.New("core: unknown algorithm")}
	}
}

// uniformRanks returns the static initial vector {1/n, …}.
func uniformRanks(n int) []float64 {
	r := make([]float64, n)
	if n == 0 {
		return r
	}
	x := 1 / float64(n)
	for i := range r {
		r[i] = x
	}
	return r
}

// invOutDeg precomputes 1/outdeg(v) for every vertex (0 for dead ends,
// which cannot occur after self-loop augmentation).
func invOutDeg(g *graph.CSR) []float64 {
	inv := make([]float64, g.N())
	for v := uint32(0); int(v) < g.N(); v++ {
		if d := g.OutDeg(v); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	return inv
}

// alphaInv precomputes ainv[v] = alpha·inv[v], the factor that turns a rank
// store into a contribution-cache store (contrib[v] = rank[v]·ainv[v]).
func alphaInv(inv []float64, alpha float64) []float64 {
	ainv := make([]float64, len(inv))
	for v, x := range inv {
		ainv[v] = alpha * x
	}
	return ainv
}

// balancedTarget is the per-chunk weight for edge-balanced chunking: Chunk
// vertices' worth of average in-weight, so a pass dispenses about the same
// number of chunks as uniform Chunk-sized chunks would.
func balancedTarget(g *graph.CSR, chunk int) int {
	n := g.N()
	if n == 0 {
		return 1
	}
	t := chunk * (g.M() + n) / n
	if t < 1 {
		t = 1
	}
	return t
}

// vertexBounds computes the edge-balanced chunk boundaries for the rank
// loop: weight[v] = indeg(v)+1 matches the pull kernel's per-vertex cost
// (one gather per in-edge plus constant overhead). With blocking enabled
// the per-chunk weight is additionally capped so one chunk's working set
// fits in cfg.BlockBytes — on small graphs the balanced target is already
// far below the cap and nothing changes; on graphs whose hub rows would
// make a chunk overflow the LLC, the cap splits them.
func vertexBounds(g *graph.CSR, cfg Config) []int {
	n := g.N()
	w := make([]int, n)
	for v := uint32(0); int(v) < n; v++ {
		w[v] = g.InDeg(v) + 1
	}
	target := balancedTarget(g, cfg.Chunk)
	if cfg.blocked() {
		if lim := cfg.BlockBytes / blockBytesPerWeight; lim >= 1 && lim < target {
			target = lim
		}
	}
	return sched.BalancedBounds(w, target)
}

// newFlags builds a flag vector per the configured representation, wrapping
// it in a transition counter when counted convergence is selected.
func newFlags(cfg Config, n int) avec.FlagVec {
	f := avec.NewFlagVec(cfg.Flags, n)
	if cfg.CountedConvergence {
		return avec.NewCounted(f)
	}
	return f
}
