// Webstream: track the top pages of an evolving web graph.
//
// A crawler keeps discovering link changes on a synthetic RMAT web graph;
// every batch of changes is applied and PageRanks are refreshed with
// lock-free Dynamic Frontier PageRank. The example prints how the top-5
// pages shift over time and how much cheaper each DFLF refresh is than a
// full static recomputation — the paper's headline use case.
//
// Run with:
//
//	go run ./examples/webstream
package main

import (
	"fmt"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/gen"
	"dfpr/internal/metrics"
)

func main() {
	const steps = 8
	spec := gen.Spec{Name: "web", Class: gen.Web, N: 1 << 14, Deg: 16, Seed: 2026}
	d := spec.Build()
	g := d.Snapshot()
	// Tolerance scaled to graph size (τ·|V| ≈ 1e-3); see DESIGN.md.
	cfg := core.Config{Threads: 8, Tol: 1e-3 / float64(g.N())}
	cfg.FrontierTol = cfg.Tol

	fmt.Printf("web graph: %d pages, %d links\n", g.N(), g.M())
	res := core.StaticLF(g, cfg)
	staticTime := res.Elapsed
	fmt.Printf("initial static rank: %s (%d iterations)\n\n", metrics.FormatDur(staticTime), res.Iterations)

	ranks := res.Ranks
	var dfTotal, staticEquiv time.Duration
	for step := 1; step <= steps; step++ {
		// Each crawl delivers ~0.01% of |E| as link churn.
		up := batch.Random(d, g.M()/10000+1, int64(step))
		gOld, gNew := batch.Transition(d, up)
		upd := core.DFLF(gOld, gNew, up.Del, up.Ins, ranks, cfg)
		if upd.Err != nil {
			fmt.Printf("step %d failed: %v\n", step, upd.Err)
			return
		}
		ranks = upd.Ranks
		g = gNew
		dfTotal += upd.Elapsed
		staticEquiv += staticTime

		fmt.Printf("crawl %d: %d del + %d ins, refreshed in %s — top pages:",
			step, len(up.Del), len(up.Ins), metrics.FormatDur(upd.Elapsed))
		for _, v := range metrics.TopK(ranks, 5) {
			fmt.Printf(" %d", v)
		}
		fmt.Println()
	}
	fmt.Printf("\n%d incremental refreshes: %s total vs ≈%s for %d static recomputes (%.1f× saved)\n",
		steps, metrics.FormatDur(dfTotal), metrics.FormatDur(staticEquiv), steps,
		float64(staticEquiv)/float64(dfTotal))
}
