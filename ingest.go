package dfpr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/graph"
)

// This file is the engine's write-side pipeline: Submit enqueues edits and
// returns immediately with a Ticket, a single background ingest loop
// coalesces everything queued into ONE merged batch per round (delta-merge
// snapshot cost scales with the merged batch, not the call count), and a
// rank scheduler drives Rank off the caller's path according to the
// configured RankPolicy. Completion is observable through tickets and the
// WaitVersion/WaitRanked watermarks; WithIngestQueue bounds the queue so a
// firehose of writers sees ErrQueueFull backpressure instead of unbounded
// memory growth.

// Ticket tracks one Submit through the ingest pipeline. Done closes when the
// submission's edits have been applied and published (coalesced with
// whatever else was queued); Version then names the graph version that
// carries them. A submission never gets a version of its own — the round's
// merged batch publishes one version shared by every ticket it coalesced.
type Ticket struct {
	done chan struct{}
	seq  uint64 // valid once done is closed
	err  error  // valid once done is closed
}

// Done returns a channel that closes when the submission has been applied
// (or failed terminally — see Version for the distinction).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Version returns the graph version the submission was published in. Before
// Done closes it reports ErrPending; after a Close that threw the queued
// submission away it reports ErrClosed.
func (t *Ticket) Version() (uint64, error) {
	select {
	case <-t.done:
		return t.seq, t.err
	default:
		return 0, ErrPending
	}
}

// Wait blocks until the submission is applied (returning its version) or
// ctx ends.
func (t *Ticket) Wait(ctx context.Context) (uint64, error) {
	select {
	case <-t.done:
		return t.seq, t.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// rankPolicyKind enumerates the scheduling disciplines of RankPolicy.
type rankPolicyKind int

const (
	rankImmediate rankPolicyKind = iota
	rankDebounce
	rankEveryN
)

// RankPolicy decides when the ingest loop refreshes ranks. Construct one
// with RankImmediate, RankDebounce or RankEveryN and install it with
// WithRankPolicy; the zero value behaves like RankImmediate().
type RankPolicy struct {
	kind  rankPolicyKind
	every int
	quiet time.Duration
	max   time.Duration
}

// RankImmediate refreshes ranks after every coalesced round — the freshest
// discipline, still off the submitter's path (the default).
func RankImmediate() RankPolicy { return RankPolicy{kind: rankImmediate} }

// RankDebounce refreshes once the round stream has been quiet for the given
// duration, but never lets published-yet-unranked edits age beyond
// maxLatency: a steady firehose is ranked every maxLatency, a trickle at
// quiet-edge boundaries. maxLatency is the freshness deadline a deployment
// promises its readers.
func RankDebounce(quiet, maxLatency time.Duration) RankPolicy {
	return RankPolicy{kind: rankDebounce, quiet: quiet, max: maxLatency}
}

// RankEveryN refreshes once at least n edits (edges of the merged batches)
// have been published since the last refresh. Leftovers below the threshold
// stay unranked until more arrive or Flush forces a refresh.
func RankEveryN(n int) RankPolicy { return RankPolicy{kind: rankEveryN, every: n} }

// String names the policy for logs and stats pages.
func (p RankPolicy) String() string {
	switch p.kind {
	case rankDebounce:
		return fmt.Sprintf("debounce(%v, max %v)", p.quiet, p.max)
	case rankEveryN:
		return fmt.Sprintf("every(%d edits)", p.every)
	default:
		return "immediate"
	}
}

func (p RankPolicy) validate() error {
	switch p.kind {
	case rankDebounce:
		if p.quiet <= 0 {
			return fmt.Errorf("dfpr: debounce quiet %v must be positive", p.quiet)
		}
		if p.max < p.quiet {
			return fmt.Errorf("dfpr: debounce max latency %v below quiet %v", p.max, p.quiet)
		}
	case rankEveryN:
		if p.every <= 0 {
			return fmt.Errorf("dfpr: rank-every-N threshold %d must be positive", p.every)
		}
	}
	return nil
}

// pendingSubmit is one queued Submit awaiting its coalescing round. n is
// the universe the submission's insertions require, recorded at submit time
// so the round's Merge — whose edge fold is last-op-wins — cannot lose
// growth when an insertion is cancelled by a later deletion in the same
// round: sequential application would have grown (vertices outlive their
// edges), so the coalesced round must too, or the teleport term (1-α)/n of
// every rank would depend on coalescing timing.
type pendingSubmit struct {
	del, ins []graph.Edge
	n        int
	t        *Ticket
}

// flushReq is one Flush awaiting the queue to be applied and ranked.
type flushReq struct {
	done chan struct{}
	err  error
}

// Submit enqueues one batch update — del edges removed, ins edges added —
// onto the ingest pipeline and returns a Ticket immediately. The background
// loop coalesces every queued submission into one merged batch per round
// (last operation per edge wins, exactly as if the submissions had been
// applied in order as a single batch), publishes one version for the round,
// and refreshes ranks per the engine's RankPolicy. Like Apply, Submit is
// open-universe: edges naming vertices beyond the current count grow the
// graph when their round applies. Use Ticket.Wait (or
// Done/Version) for the assigned version and WaitRanked to observe the
// refresh; Apply remains the synchronous one-version-per-call path.
//
// When the queued edits would exceed the WithIngestQueue bound, Submit
// rejects the batch with ErrQueueFull — the backpressure signal for callers
// to retry later. A submission larger than the whole bound can never be
// accepted.
func (e *Engine) Submit(ctx context.Context, del, ins []Edge) (*Ticket, error) {
	if err := e.errIfFollower(); err != nil {
		return nil, err
	}
	return e.submitInternal(ctx, toInternal(del), toInternal(ins))
}

// submitInternal enqueues one already-converted batch — shared by Submit
// and SubmitKeyed (whose keys are interned to dense ids before this point).
// Like Apply, submission is open-universe: edges naming vertices beyond the
// current count grow the graph when their coalescing round applies.
func (e *Engine) submitInternal(ctx context.Context, gdel, gins []graph.Edge) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dfpr: submit aborted: %w", err)
	}
	// The universe this submission requires is pinned NOW (insertions
	// only; deletions never grow) and the bound enforced at submission,
	// where the caller can still be told — a round merging many in-bound
	// submissions stays in bound (Merge folds N as a max).
	up := batch.Update{Del: gdel, Ins: gins}
	up.N = up.Universe(0)
	if err := e.checkUniverse(up); err != nil {
		e.met.rejectSize.Inc()
		return nil, err
	}
	t := &Ticket{done: make(chan struct{})}
	size := len(gdel) + len(gins)
	e.ingestMu.Lock()
	if e.ingestClosed {
		e.ingestMu.Unlock()
		return nil, ErrClosed
	}
	if e.opts.queue > 0 && e.ingestEdits+size > e.opts.queue {
		e.ingestMu.Unlock()
		e.met.rejectFull.Inc()
		return nil, fmt.Errorf("dfpr: %d edits queued, %d more would exceed the bound %d: %w",
			e.ingestEdits, size, e.opts.queue, ErrQueueFull)
	}
	e.ingestQ = append(e.ingestQ, pendingSubmit{del: gdel, ins: gins, n: up.N, t: t})
	e.ingestEdits += size
	e.met.submissions.Inc()
	e.startIngestLocked()
	e.ingestMu.Unlock()
	e.wakeIngest()
	return t, nil
}

// Flush drives everything accepted by Submit so far through the pipeline
// and then brings ranks up to the latest published version, regardless of
// the rank policy — the drain hook a graceful shutdown calls before Close.
// It returns when the engine is fully caught up (or ctx ends first; the
// pipeline keeps working in that case, only the wait is abandoned).
func (e *Engine) Flush(ctx context.Context) error {
	f := &flushReq{done: make(chan struct{})}
	e.ingestMu.Lock()
	if e.ingestClosed {
		e.ingestMu.Unlock()
		return ErrClosed
	}
	e.flushQ = append(e.flushQ, f)
	e.startIngestLocked()
	e.ingestMu.Unlock()
	e.wakeIngest()
	select {
	case <-f.done:
		if d := e.durable(); f.err == nil && d != nil {
			// A drain is a durability barrier too: under batched fsync the
			// drained rounds may still sit in the page cache — force them
			// down so "Flush returned" means "survives a crash".
			if err := d.log.Sync(); err != nil {
				return fmt.Errorf("%w: %w", ErrDurabilityDegraded, err)
			}
		}
		return f.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WaitVersion blocks until the published graph version reaches seq (from
// Apply or from an ingest round), ctx ends, or the engine closes
// (ErrClosed). Version 0 exists from construction, so WaitVersion(ctx, 0)
// returns immediately.
func (e *Engine) WaitVersion(ctx context.Context, seq uint64) error {
	return e.verWM.wait(ctx, seq)
}

// WaitRanked blocks until the published RANK version reaches seq — i.e.
// ranks at least as fresh as graph version seq are being served — ctx ends,
// or the engine closes (ErrClosed). Before the first successful Rank no
// rank version exists, so even WaitRanked(ctx, 0) waits.
func (e *Engine) WaitRanked(ctx context.Context, seq uint64) error {
	return e.rankWM.wait(ctx, seq)
}

// startIngestLocked launches the ingest loop on first use. Caller holds
// e.ingestMu.
func (e *Engine) startIngestLocked() {
	if e.ingestOn {
		return
	}
	e.ingestOn = true
	e.ingestWake = make(chan struct{}, 1)
	e.ingestStop = make(chan struct{})
	e.ingestDone = make(chan struct{})
	e.ingestCtx, e.ingestHalt = context.WithCancel(context.Background())
	go e.ingestLoop()
}

// wakeIngest nudges the loop; a pending nudge suffices for any number of
// submissions.
func (e *Engine) wakeIngest() {
	select {
	case e.ingestWake <- struct{}{}:
	default:
	}
}

// stopIngest shuts the pipeline down: no new submissions, the in-flight
// scheduled Rank (if any) is canceled, queued-but-unapplied tickets fail
// with ErrClosed. Called by Close before the engine-side teardown; safe to
// call more than once.
func (e *Engine) stopIngest() {
	e.ingestMu.Lock()
	first := !e.ingestClosed
	e.ingestClosed = true
	on := e.ingestOn
	e.ingestMu.Unlock()
	if first && on {
		close(e.ingestStop)
		e.ingestHalt()
	}
	if on {
		<-e.ingestDone
	}
}

// ingestLoop is the single background consumer: one coalescing round per
// wake-up, then a policy decision whether to rank now, later (timer), or
// not yet.
func (e *Engine) ingestLoop() {
	defer close(e.ingestDone)
	var (
		pending    int       // applied-but-unranked edits
		dirtySince time.Time // when pending went 0 → positive
		lastRound  time.Time // when the newest round was applied
		timer      *time.Timer
	)
	for {
		var timerC <-chan time.Time
		if timer != nil {
			timerC = timer.C
		}
		select {
		case <-e.ingestStop:
			e.failPending(ErrClosed)
			return
		case <-e.ingestWake:
		case <-timerC:
			timer = nil
		}
		if timer != nil {
			if !timer.Stop() {
				<-timer.C
			}
			timer = nil
		}

		// Drain: everything queued right now becomes one round; flushes
		// taken in the same critical section cover at least every submission
		// accepted before them.
		e.ingestMu.Lock()
		q := e.ingestQ
		flushes := e.flushQ
		e.ingestQ = nil
		e.flushQ = nil
		e.ingestEdits = 0
		e.ingestMu.Unlock()

		if len(q) > 0 {
			ups := make([]batch.Update, len(q))
			for i, p := range q {
				ups[i] = batch.Update{Del: p.del, Ins: p.ins, N: p.n}
			}
			merged := batch.Merge(ups...)
			// A round changes the graph when edges survived the merge OR the
			// submissions' universe outgrows the store: a vertex whose only
			// edge was inserted and deleted within the round still exists
			// afterwards (exactly as sequential application would leave it),
			// so pure-growth rounds must publish — and count as an edit below,
			// or no policy would ever rank the rescaled teleport term.
			grows := merged.N > e.store.Current().G.N()
			if merged.Size() == 0 && !grows {
				// Nothing survived the merge (empty submissions, or churn
				// that cancelled out) and no growth: the graph would not
				// change, so publishing a version — which no policy would
				// ever rank, stranding WaitRanked on it — is wrong. Resolve
				// the tickets to the current version instead.
				seq := e.store.Current().Seq
				for _, p := range q {
					p.t.seq = seq
					close(p.t.done)
				}
			} else {
				// Share the close-exclusion side like Apply: no version may
				// be published once Close has flipped applyble (stopIngest
				// runs before that flip, so in practice the loop is gone
				// first).
				e.closeMu.RLock()
				ok := e.applyble
				var seq uint64
				if ok {
					// storeApply is the log-before-publish point: on durable
					// engines the round's WAL record is appended (fsynced per
					// policy) before the version becomes visible.
					next := e.storeApply(merged)
					seq = next.Seq
				}
				e.closeMu.RUnlock()
				if !ok {
					for _, p := range q {
						p.t.err = ErrClosed
						close(p.t.done)
					}
					for _, f := range flushes {
						f.err = ErrClosed
						close(f.done)
					}
					continue
				}
				for _, p := range q {
					p.t.seq = seq
					close(p.t.done)
				}
				e.verWM.advance(seq)
				e.ingestRounds.Add(1)
				e.ingestCoalesced.Add(int64(merged.Size()))
				if pending == 0 {
					dirtySince = time.Now()
				}
				// A pure-growth round carries no edges but still moved every
				// rank (the teleport term rescaled): count at least one edit
				// so the rank policies see it.
				pending += max(merged.Size(), 1)
				lastRound = time.Now()
			}
		}

		// Rank scheduling: flushes force a full catch-up; otherwise the
		// policy decides now / at a deadline / not yet.
		rankNow := len(flushes) > 0 && e.Behind() > 0
		p := e.opts.policy
		if pending > 0 {
			switch p.kind {
			case rankImmediate:
				rankNow = true
			case rankEveryN:
				rankNow = rankNow || pending >= p.every
			case rankDebounce:
				deadline := lastRound.Add(p.quiet)
				if md := dirtySince.Add(p.max); md.Before(deadline) {
					deadline = md
				}
				if !time.Now().Before(deadline) {
					rankNow = true
				} else if !rankNow {
					timer = time.NewTimer(time.Until(deadline))
				}
			}
		}
		// At a burst's trailing edge — nothing further queued — settle the
		// key space so a now-idle engine serves its freshest keys lock-free
		// (gated against trickle-write quadratic copying; see keymap.Settle).
		if e.keys != nil {
			e.ingestMu.Lock()
			idle := len(e.ingestQ) == 0
			e.ingestMu.Unlock()
			if idle {
				e.keys.Settle()
			}
		}

		var rankErr error
		if rankNow {
			if _, err := e.Rank(e.ingestCtx); err != nil {
				rankErr = err
				// A failed refresh must not strand applied-but-unranked
				// edits: when the stream goes quiet nothing else re-wakes
				// the loop, so arm a retry — unless the pipeline is being
				// shut down (canceled context), where the stop signal wins.
				if pending > 0 && timer == nil && e.ingestCtx.Err() == nil {
					timer = time.NewTimer(rankRetryDelay)
				}
			} else {
				pending = 0
			}
		}
		for _, f := range flushes {
			err := rankErr
			// A refresh canceled by the pipeline's own shutdown is the
			// documented close state, not a caller-visible cancellation.
			if err != nil && e.ingestCtx.Err() != nil {
				err = ErrClosed
			}
			f.err = err
			close(f.done)
		}
	}
}

// rankRetryDelay is how long the ingest loop waits before retrying a rank
// refresh that failed (crashed workers with the static fallback disabled,
// typically) while applied-but-unranked edits are pending.
const rankRetryDelay = 50 * time.Millisecond

// failPending rejects everything still queued at shutdown. Submissions
// accepted but not yet applied are lost by contract — Flush before Close
// makes them durable.
func (e *Engine) failPending(err error) {
	e.ingestMu.Lock()
	q := e.ingestQ
	flushes := e.flushQ
	e.ingestQ = nil
	e.flushQ = nil
	e.ingestEdits = 0
	e.ingestMu.Unlock()
	for _, p := range q {
		p.t.err = err
		close(p.t.done)
	}
	for _, f := range flushes {
		f.err = err
		close(f.done)
	}
}

// watermark is a monotone sequence gate: waiters block until the watermark
// reaches their sequence number, advance releases them, close fails every
// current and future waiter with ErrClosed.
type watermark struct {
	mu      sync.Mutex
	cur     uint64
	has     bool // false until the first advance (rank versions start unset)
	closed  bool
	waiters map[*wmWaiter]struct{}
}

type wmWaiter struct {
	seq uint64
	ch  chan error
}

// init seeds the watermark with an existing sequence (graph version 0
// exists from construction).
func (w *watermark) init(seq uint64) {
	w.cur, w.has = seq, true
}

func (w *watermark) advance(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || (w.has && seq <= w.cur) {
		return
	}
	w.cur, w.has = seq, true
	for wt := range w.waiters {
		if wt.seq <= w.cur {
			wt.ch <- nil
			delete(w.waiters, wt)
		}
	}
}

func (w *watermark) wait(ctx context.Context, seq uint64) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.has && w.cur >= seq {
		w.mu.Unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		w.mu.Unlock()
		return err
	}
	wt := &wmWaiter{seq: seq, ch: make(chan error, 1)}
	if w.waiters == nil {
		w.waiters = make(map[*wmWaiter]struct{})
	}
	w.waiters[wt] = struct{}{}
	w.mu.Unlock()
	select {
	case err := <-wt.ch:
		return err
	case <-ctx.Done():
		w.mu.Lock()
		delete(w.waiters, wt)
		w.mu.Unlock()
		// A release may have raced the cancellation; prefer it.
		select {
		case err := <-wt.ch:
			return err
		default:
			return ctx.Err()
		}
	}
}

func (w *watermark) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	for wt := range w.waiters {
		wt.ch <- ErrClosed
		delete(w.waiters, wt)
	}
}
