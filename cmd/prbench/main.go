// Command prbench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment prints aligned tables (or CSV) together
// with a note stating the shape the paper reports, so measured output can be
// compared directly.
//
// Usage:
//
//	prbench -list
//	prbench -exp fig7 -scale 1 -threads 8
//	prbench -exp all -quick
//	prbench -exp fig5,fig6 -csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"dfpr"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
	"dfpr/internal/harness"
)

func main() {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Float64("scale", 1, "dataset scale factor (1 ≈ 16k-56k vertices per graph)")
		threads = flag.Int("threads", 0, "worker goroutines per run (0 = NumCPU)")
		quick   = flag.Bool("quick", false, "trimmed sweeps (seconds instead of minutes)")
		seed    = flag.Int64("seed", 42, "base random seed")
		reps    = flag.Int("reps", 1, "timing repetitions per measurement (min reported)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		bjson   = flag.String("benchjson", "", "write kernel + snapshot micro-benchmarks as JSON to this path and exit")
	)
	flag.Parse()

	if *bjson != "" {
		if err := harness.RunBenchJSON(*bjson, *scale, *reps, queryBench(*scale, *threads)); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *expFlag == "" {
		fmt.Println("Available experiments:")
		for _, e := range harness.Registry {
			fmt.Printf("  %-10s %s\n", e.ID, e.Desc)
		}
		if *expFlag == "" && !*list {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	opt := harness.Options{Scale: *scale, Threads: *threads, Quick: *quick, Seed: *seed, Reps: *reps}

	var ids []string
	if *expFlag == "all" {
		for _, e := range harness.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := harness.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "prbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		sections := exp.Run(opt)
		for _, s := range sections {
			fmt.Printf("== %s ==\n", s.Title)
			if s.Note != "" {
				fmt.Printf("%s\n", s.Note)
			}
			if *csv {
				fmt.Print(s.Table.CSV())
			} else {
				fmt.Print(s.Table.String())
			}
			fmt.Println()
		}
		fmt.Printf("-- %s completed in %s --\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// queryBench contributes the view-query section of the benchjson report:
// the zero-copy read path (View.ScoreOf, View.TopK) measured through the
// public API on the suite's largest graph, against the deprecated
// full-copy Snapshot as baseline. It runs here rather than in the harness
// because internal packages cannot import the root package.
func queryBench(scale float64, threads int) func(*harness.BenchReport) {
	return func(rep *harness.BenchReport) {
		var spec gen.Spec
		for _, s := range gen.SuiteSparse12(scale) {
			if s.Name == "sk-2005" {
				spec = s
				break
			}
		}
		d := spec.Build()
		n, edges := exutil.Flatten(d)
		eng, err := dfpr.New(n, edges, dfpr.WithThreads(threads), dfpr.WithTolerance(1e-3/float64(n)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: querybench: %v\n", err)
			return
		}
		defer eng.Close()
		if _, err := eng.Rank(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: querybench: %v\n", err)
			return
		}
		v, err := eng.View()
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: querybench: %v\n", err)
			return
		}
		const k = 10
		q := harness.QueryResult{Graph: spec.Name, Vertices: v.N(), Edges: v.M(), K: k}

		firstStart := time.Now()
		v.TopK(k) // builds the per-version order cache
		q.TopKFirstNs = float64(time.Since(firstStart).Nanoseconds())

		nsPerOp := func(f func(b *testing.B)) float64 {
			r := testing.Benchmark(f)
			return float64(r.T.Nanoseconds()) / float64(r.N)
		}
		q.ScoreOfNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := v.ScoreOf(uint32(i % n)); !ok {
					b.Fatal("lookup failed")
				}
			}
		})
		q.TopKWarmNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(v.TopK(k)) != k {
					b.Fatal("topk failed")
				}
			}
		})
		q.SnapshotCopyNs = nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				//lint:ignore SA1019 the deprecated copy path is the baseline this section measures against
				if s := eng.Snapshot(); len(s.Ranks) != n {
					b.Fatal("snapshot failed")
				}
			}
		})
		q.ScoreOfAllocs = testing.AllocsPerRun(200, func() { v.ScoreOf(7) })
		q.TopKAllocs = testing.AllocsPerRun(200, func() { v.TopK(k) })
		rep.Queries = append(rep.Queries, q)
		fmt.Fprintf(os.Stderr,
			"benchjson: query %-14s scoreof %.1f ns (%.0f allocs)  topk %.0f ns (%.0f allocs)  snapshot-copy %.0f ns\n",
			spec.Name, q.ScoreOfNs, q.ScoreOfAllocs, q.TopKWarmNs, q.TopKAllocs, q.SnapshotCopyNs)
	}
}
