package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dfpr"
)

// keyedServer boots a keyed engine with a small social graph and wraps it
// in an httptest server.
func keyedServer(t *testing.T, opts ...Option) (*dfpr.Engine, *httptest.Server) {
	t.Helper()
	eng, err := dfpr.Open(dfpr.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	_, err = eng.ApplyKeyed(context.Background(), nil, []dfpr.KeyEdge{
		{From: "alice", To: "bob"},
		{From: "bob", To: "carol"},
		{From: "carol", To: "alice"},
		{From: "dave", To: "alice"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return eng, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestRankByKey(t *testing.T) {
	_, ts := keyedServer(t)
	var got struct {
		Vertex  uint32  `json:"vertex"`
		Key     string  `json:"key"`
		Score   float64 `json:"score"`
		Version uint64  `json:"version"`
	}
	if code := getJSON(t, ts.URL+"/v1/rank/alice", &got); code != http.StatusOK {
		t.Fatalf("rank/alice = %d", code)
	}
	if got.Key != "alice" || got.Vertex != 0 || got.Score <= 0 {
		t.Fatalf("rank/alice = %+v", got)
	}
	// Unknown key is a 404, not a parse error.
	var e map[string]string
	if code := getJSON(t, ts.URL+"/v1/rank/mallory", &e); code != http.StatusNotFound {
		t.Fatalf("rank/mallory = %d", code)
	}
	// Dense opt-out still works on a keyed server, and — like topk/delta
	// under the same flag — stays dense: no key field.
	got.Key = "" // absent fields keep stale values through json decode
	if code := getJSON(t, ts.URL+"/v1/rank/1?ids=dense", &got); code != http.StatusOK {
		t.Fatalf("rank/1?ids=dense = %d", code)
	}
	if got.Vertex != 1 || got.Key != "" {
		t.Fatalf("dense rank = %+v (want no key)", got)
	}
}

func TestTopKAndDeltaKeyed(t *testing.T) {
	eng, ts := keyedServer(t)
	var top struct {
		K       int `json:"k"`
		Entries []struct {
			Vertex uint32  `json:"vertex"`
			Key    string  `json:"key"`
			Score  float64 `json:"score"`
		} `json:"entries"`
	}
	if code := getJSON(t, ts.URL+"/v1/topk?k=3", &top); code != http.StatusOK {
		t.Fatalf("topk = %d", code)
	}
	if top.K != 3 || top.Entries[0].Key == "" {
		t.Fatalf("topk = %+v", top)
	}
	if top.Entries[0].Key != "alice" {
		t.Errorf("top key %q, want alice", top.Entries[0].Key)
	}
	// Dense opt-out drops the key fields.
	var raw struct {
		Entries []map[string]any `json:"entries"`
	}
	if code := getJSON(t, ts.URL+"/v1/topk?k=2&ids=dense", &raw); code != http.StatusOK {
		t.Fatalf("dense topk = %d", code)
	}
	if _, hasKey := raw.Entries[0]["key"]; hasKey {
		t.Errorf("dense topk still carries keys: %v", raw.Entries[0])
	}

	// Grow through the keyed write path, then delta across the growth.
	if _, err := eng.ApplyKeyed(context.Background(), nil, []dfpr.KeyEdge{{From: "erin", To: "alice"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	var delta struct {
		Movements []struct {
			Vertex uint32  `json:"vertex"`
			Key    string  `json:"key"`
			From   float64 `json:"from"`
			To     float64 `json:"to"`
		} `json:"movements"`
	}
	// The first published rank version is 1 (the batch that built the
	// graph); erin's growth landed in version 2.
	if code := getJSON(t, ts.URL+"/v1/delta?from=1", &delta); code != http.StatusOK {
		t.Fatalf("delta = %d", code)
	}
	var sawErin bool
	for _, m := range delta.Movements {
		if m.Key == "erin" {
			sawErin = true
			if m.From != 0 {
				t.Errorf("erin From = %g, want 0 (did not exist at version 1)", m.From)
			}
		}
	}
	if !sawErin {
		t.Errorf("delta across growth missing the new key: %+v", delta.Movements)
	}
}

func TestApplyKeyedEndpoint(t *testing.T) {
	eng, ts := keyedServer(t)
	body := `{"ins":[{"from":"frank","to":"alice"},{"from":"alice","to":"frank"}]}`
	resp, err := http.Post(ts.URL+"/v1/apply?wait=ranked", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed apply = %d", resp.StatusCode)
	}
	if _, ok := eng.Resolve("frank"); !ok {
		t.Fatal("apply did not intern frank")
	}
	var got struct {
		Score float64 `json:"score"`
	}
	if code := getJSON(t, ts.URL+"/v1/rank/frank", &got); code != http.StatusOK || got.Score <= 0 {
		t.Fatalf("rank/frank = %d, %+v", code, got)
	}

	// A batch mixing keyed and dense edges is rejected.
	mixed := `{"ins":[{"from":"x","to":"y"},{"u":0,"v":1}]}`
	resp2, err := http.Post(ts.URL+"/v1/apply", "application/json", strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed batch = %d, want 400", resp2.StatusCode)
	}

	// Stats reflect the key space.
	var st struct {
		Keyed bool `json:"keyed"`
		Keys  int  `json:"keys"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if !st.Keyed || st.Keys != eng.Keys() {
		t.Fatalf("stats = %+v (engine keys %d)", st, eng.Keys())
	}
}

// TestApplyKeyedOnDenseEngine: keyed edges against a dense-ID engine are a
// client error, not an internment into nowhere.
func TestApplyKeyedOnDenseEngine(t *testing.T) {
	eng, err := dfpr.New(4, []dfpr.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/v1/apply", "application/json",
		strings.NewReader(`{"ins":[{"from":"a","to":"b"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("keyed apply on dense engine = %d, want 400", resp.StatusCode)
	}
}

// TestTopKClampedToUniverse: within the server cap, k beyond |V| costs and
// returns |V| entries — the response's K reports the clamp.
func TestTopKClampedToUniverse(t *testing.T) {
	_, ts := keyedServer(t, WithMaxK(1_000_000))
	var top struct {
		K       int              `json:"k"`
		Entries []map[string]any `json:"entries"`
	}
	if code := getJSON(t, ts.URL+"/v1/topk?k=999999", &top); code != http.StatusOK {
		t.Fatalf("huge k = %d", code)
	}
	if top.K != 4 || len(top.Entries) != 4 {
		t.Fatalf("k clamp: K=%d entries=%d, want 4 (the universe)", top.K, len(top.Entries))
	}
	// Beyond the cap is still a 400.
	var e map[string]string
	if code := getJSON(t, ts.URL+"/v1/topk?k=1000001", &e); code != http.StatusBadRequest {
		t.Fatalf("k beyond cap = %d, want 400", code)
	}
}
