// Package a exercises the atomicfield analyzer: a field accessed via
// sync/atomic anywhere must be accessed atomically everywhere.
package a

import "sync/atomic"

type counter struct {
	hits uint64 // accessed atomically → every access must be atomic
	name string // never atomic → plain access fine
}

func (c *counter) Add() { atomic.AddUint64(&c.hits, 1) }

func (c *counter) Load() uint64 { return atomic.LoadUint64(&c.hits) }

func (c *counter) Racy() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere`
}

func (c *counter) RacyWrite() {
	c.hits = 0 // want `field hits is accessed with sync/atomic elsewhere`
}

func (c *counter) Name() string { return c.name }

func newCounter() *counter {
	return &counter{hits: 0, name: "x"} // literal init precedes sharing
}

type vec struct {
	bits []uint64 // ELEMENTS accessed atomically; the header is plain
}

func (v *vec) Load(i int) uint64 { return atomic.LoadUint64(&v.bits[i]) }

func (v *vec) Len() int { return len(v.bits) } // header access is fine

func (v *vec) Fill(x uint64) {
	for i := range v.bits { // header access is fine
		atomic.StoreUint64(&v.bits[i], x)
	}
}

func (v *vec) Racy(i int) uint64 {
	return v.bits[i] // want `elements of field bits are accessed with sync/atomic elsewhere`
}

type plain struct{ n int }

func (p *plain) bump() { p.n++ } // no atomic use of n anywhere: fine
