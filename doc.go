// Package dfpr is a from-scratch Go reproduction of "Lock-Free Computation
// of PageRank in Dynamic Graphs" (Subhajit Sahu, IPPS 2024,
// arXiv:2407.19562), packaged as a service-grade library for keeping
// PageRanks fresh on a graph that keeps changing.
//
// The public surface is the Engine: a versioned dynamic graph plus a rank
// vector maintained by the paper's Dynamic Frontier approach (lock-free
// DFLF by default), constructed with functional options and driven with
// contexts. The vertex universe is open and engine-owned: an engine built
// with Open starts empty and grows as submissions mention entities, with
// clients addressing vertices by their natural string keys — the key→id
// compaction lives inside the engine, not in every caller:
//
//	eng, err := dfpr.Open(
//		dfpr.WithAlgorithm(dfpr.DFLF),
//		dfpr.WithThreads(8))
//	t, err := eng.SubmitKeyed(ctx, nil, []dfpr.KeyEdge{
//		{From: "alice", To: "bob"},   // never-seen keys create vertices
//		{From: "bob", To: "carol"},
//	})
//	seq, err := t.Wait(ctx)              // version the edits landed in
//	err = eng.WaitRanked(ctx, seq)       // ranks at least that fresh
//	v, err := eng.View()
//	score, ok := v.ScoreOfKey("bob")     // keyed point lookup, 0 allocs
//	board := v.TopKKeys(10)              // ranked keys for rendering
//
// Dense-ID construction remains for callers that already hold compact ids:
//
//	eng, err := dfpr.New(n, edges,
//		dfpr.WithAlgorithm(dfpr.DFLF),
//		dfpr.WithTolerance(1e-10),
//		dfpr.WithThreads(8))
//	res, err := eng.Rank(ctx)            // initial static convergence
//	seq, err := eng.Apply(ctx, del, ins) // publish a batch update
//	res, err = eng.Rank(ctx)             // incremental, frontier-sized refresh
//
// Apply and Submit are open-universe too: an edge naming a vertex beyond
// the current count grows the graph (Engine.Grow pre-sizes it), new
// vertices materialising with their dead-end self-loop. Growth keeps
// incremental ranking equivalent to a cold build: previous ranks rescale
// by n₀/n₁ and new vertices seed at 1/n₁ — the closed-form fixed point of
// the grown graph under self-loop dead-end elimination (the paper's §6
// future-work rescale, made exact; see DESIGN.md §8).
//
// Writes scale through the ingest pipeline: Submit enqueues a batch and
// returns a Ticket immediately, a background loop coalesces everything
// queued into one merged batch per round, and a pluggable rank scheduler
// (WithRankPolicy: RankImmediate, RankDebounce, RankEveryN) refreshes ranks
// off the write path — so the refresh cost is amortised over however many
// submissions arrived meanwhile, and the delta-merge snapshot cost scales
// with the merged batch rather than the call count:
//
//	t, err := eng.Submit(ctx, del, ins)  // enqueue; returns immediately
//	seq, err := t.Wait(ctx)              // version the edits landed in
//	err = eng.WaitRanked(ctx, seq)       // ranks at least that fresh
//	err = eng.Flush(ctx)                 // drain: applied AND ranked
//
// WithIngestQueue bounds the queue (Submit reports ErrQueueFull —
// backpressure, not an outage), and a Rank catching up across several
// pending versions replays them as one merged incremental run
// (WithSpanCoalescing, on by default).
//
// WithDurability(dir) makes all of it survive the process: every published
// round is appended to a write-ahead log (CRC-framed, fsynced per
// WithFsync: FsyncAlways, FsyncBatched group-commit, FsyncNone) before its
// version is visible to readers, and periodic checkpoints
// (WithCheckpointEvery, or an explicit Checkpoint call) snapshot graph,
// ranks and key space to bound replay. Construction against a directory
// with state warm-restarts instead of building: reads serve the
// checkpointed watermark immediately, the log tail replays through the
// incremental path, Recovering reports true until the first Rank catches
// the tip, and recovered ranks converge to the cold-build fixed point. A
// torn final record — the normal result of a crash mid-append — is
// truncated, never fatal. After startup, I/O failure degrades rather than
// wedges: applies continue in memory and Stats().Durability.Err surfaces
// ErrDurabilityDegraded wrapping the cause. HasDurableState probes a
// directory; keyed engines recover with Open, dense ones with New.
//
// The WAL doubles as a replication stream. Engine.Feed returns the HTTP
// handler replicas tail (a checkpoint bootstrap followed by CRC-framed
// records), and StartReplica dials it to build a read-only follower — a
// full Engine whose views, watermarks and WaitRanked semantics work
// unchanged, with writes bouncing as ErrNotWriter and
// Stats().Replication reporting role, applied sequence and lag. A replica
// replays the writer's round boundaries, so a follower that keeps pace
// carries bitwise-identical ranks. JoinCluster adds membership and
// failover on top: nodes share the durability directory, the writer holds
// a TTL lease, and when it dies a replica promotes itself — replaying the
// shared log tail, taking over the feed, and resuming the WAL sequence
// exactly where the dead writer stopped:
//
//	c, err := dfpr.JoinCluster(ctx, dfpr.ClusterConfig{
//		NodeID: "a", Dir: dir, SelfURL: self, Peers: peers,
//	})
//	eng := c.Engine()          // writer or follower, per c.Role()
//
// Reads go through Views — immutable, zero-copy handles pinned to one
// published version, shared by every reader of that version:
//
//	v, err := eng.View()       // latest ranks, one atomic load
//	score, ok := v.ScoreOf(u)  // point lookup, zero allocations
//	board := v.TopK(10)        // O(k) result from a cached shared selection
//	old, err := eng.ViewAt(s)  // retained history (WithHistory versions)
//	moved := v.Delta(old)      // movement set, cost scales with the batch
//
// Keyed engines add ScoreOfKey/TopKKeys/DeltaKeys and Resolve/KeyOf id
// translation. A view resolves exactly the keys that existed at its
// version — the key space is append-only, so "existed at that version" is
// nothing more than the bounds check the dense read performs — and the
// keyed hit path is one lock-free interner probe on top of it.
//
// Rank honours cancellation: a canceled context aborts a converging run
// promptly (workers joined, no goroutine leaks) with ErrCanceled, leaving
// the ranks at the last completed version. Subscribe streams versioned
// rank updates — each carrying the version's View — over a conflating
// channel sized for live serving; WithFaultPlan/SetFaultPlan inject the
// paper's thread-delay and crash-stop faults for chaos drills; RankTrace
// exposes the per-pass frontier sizes that explain where the Dynamic
// Frontier saving comes from.
//
// The serve package exposes an Engine over HTTP/JSON (GET /v1/rank/{u},
// /v1/topk, /v1/delta, /v1/wait/{seq}, /v1/healthz, /v1/stats, and a
// non-blocking POST /v1/apply that answers 202 with the assigned version —
// ?wait=ranked for read-your-ranks — with per-request version pinning via
// the X-DFPR-Version header and a graceful drain that flushes the ingest
// queue); on a keyed engine the surface speaks keys (/v1/rank/{key}, keyed
// top-k/delta entries, keyed apply edges; ?ids=dense opts out). Clustered
// serving rides the same surface: GET /v1/feed streams the WAL,
// serve.WithCluster makes a replica proxy writes to the current leader,
// version pins wait at the replica's watermark so read-your-ranks survives
// fan-out, and /v1/healthz /v1/stats report role and replication lag.
// cmd/prserve is its ready-made binary (-keyed for string-keyed serving,
// -data for durable serving with crash-safe warm restarts, -cluster-node/
// -cluster-self/-cluster-peers to serve as a cluster member).
//
// Every engine is observable without dependencies: Engine.Metrics returns
// a telemetry registry (stdlib-only counters, gauges and histograms —
// instrument writes are lock-free and allocation-free) covering ingest,
// graph growth, rank refreshes, publish→ranked freshness and, on durable
// engines, WAL and checkpoint latencies. The serve layer adds per-endpoint
// RED series, exposes everything as Prometheus text exposition on GET
// /metrics, mounts net/http/pprof on request (WithPprof), and logs through
// a caller-supplied log/slog Logger (WithLogger; silent by default).
// cmd/prload drives a running server with a configurable read/write mix
// and reports latency percentiles plus a validated final scrape. DESIGN.md
// §11 holds the metric inventory.
//
// The paper's contribution — the Dynamic Frontier approach for updating
// PageRank after batch edge updates, and its lock-free fault-tolerant
// implementation DFLF — lives in internal/core together with every
// baseline the paper compares against (Static, Naive-dynamic and
// Dynamic-Traversal PageRank, each barrier-based and lock-free).
// Supporting substrates:
//
//	internal/avec      atomic float64 and flag vectors
//	internal/keymap    append-only string↔id interner (lock-free reads)
//	internal/graph     CSR snapshots (incremental delta-merge + parallel
//	                   cold build), growable dynamic edge store, batches,
//	                   binary container codec + delta-compressed adjacency
//	internal/gio       edge-list/MatrixMarket readers, binary CSR container
//	                   files and the zero-parse mmap loader
//	internal/gen       synthetic stand-ins for the paper's datasets
//	internal/batch     batch-update generation and temporal replay
//	internal/sched     dynamic chunk scheduling (uniform and edge-balanced),
//	                   instrumented barriers, abortable work pools
//	internal/fault     thread delay, crash-stop and filesystem-I/O injection
//	internal/wal       write-ahead log segments + checkpoint files
//	internal/repl      WAL feed streaming, replica client, writer lease,
//	                   peer health polling
//	internal/traverse  reachability marking for the DT baseline
//	internal/topk      top-k selection kernel, norms, geometric means, tables
//	internal/telemetry metrics registry + Prometheus exposition encoder/parser
//	internal/harness   one driver per table/figure of the evaluation
//	internal/snapshot  versioned store + Ranker composition layer
//
// Performance architecture (see README.md for the full story): graph
// snapshots are built incrementally — Dynamic tracks the rows a batch
// dirtied and Snapshot delta-merges them into the previous CSR instead of
// rebuilding, falling back to a parallel counting-sort cold build; the rank
// kernels gather a contribution cache contrib[u] = α·rank[u]/outdeg(u)
// maintained at every rank store, one memory read per edge instead of two;
// and the chunk schedulers place chunk boundaries by prefix in-degree so
// power-law hub rows do not serialise a pass behind one worker. The read
// path adds per-version views: one shared immutable vector and one shared
// top-k selection per version, so point lookups allocate nothing and
// leaderboards allocate O(k) (measured in BENCH_PR3.json). The write path
// adds the coalescing ingest pipeline measured in BENCH_PR4.json: sustained
// asynchronous applies per second against the synchronous apply+rank
// baseline at an equal ranked-freshness deadline. BENCH_PR5.json adds the
// keyed-lookup overhead (ScoreOfKey vs the raw dense load, 0 allocs) and
// growth-heavy ingest (a stream that keeps growing the universe, pinned
// against a cold rebuild). BENCH_PR9.json adds the memory-layout story:
// graphs load from versioned binary CSR containers (DFPRCSR1) that a
// page-aligned mmap aliases zero-parse — ~45× faster than parsing the
// text edge list — with an optional delta-compressed adjacency (~2.6×
// smaller, decoded on the fly during sweeps); WithBlockedSweeps turns the
// pull kernels cache-blocked (LLC-sized destination blocks, word-at-a-time
// frontier scans; WithBlockBytes sizes them), all eight variants pinned
// L∞ ≤ 1e-12 against the unblocked sweeps; and a threads section records
// the multi-core scaling matrix with host CPU and GOMAXPROCS metadata.
// BENCH_PR10.json adds the replication numbers: replica bootstrap time,
// per-apply replication lag percentiles over a real loopback stream, and
// the feed's catch-up throughput on a backlogged burst.
//
// Binaries (all built on the public API): cmd/prbench regenerates every
// table and figure (and, with -benchjson, records kernel, snapshot,
// view-query, ingest, keyed and growth micro-benchmarks machine-readably,
// e.g. BENCH_PR5.json, plus a -matrix thread sweep and container-load
// timings), cmd/prgen emits datasets as edge lists or binary CSR
// containers (-csr, -compress), cmd/prrank
// ranks an edge list with any variant (-keyed for string keys),
// cmd/prserve serves ranks over HTTP, cmd/prload load-tests a running
// server and validates its metrics exposition.
// Runnable examples live under examples/. The benchmarks in this root
// package (bench_test.go) run trimmed versions of every experiment under
// `go test -bench`.
//
// See README.md for a guided tour and DESIGN.md for the system inventory
// and the paper→reproduction substitution map.
package dfpr
