// Package wal is the engine's durability layer: a write-ahead log of
// published batch rounds plus periodic checkpoints of the full engine state
// (CSR snapshot, rank vector, key space), so a restart recovers by loading
// the latest valid checkpoint and replaying only the log tail behind it.
//
// The contract the engine builds on:
//
//   - Log-before-publish: a round's record is appended (in publication
//     order) before the version becomes visible to readers, so every state
//     a reader ever observed is reconstructible from checkpoint + tail.
//   - Torn-tail rule: recovery treats the first invalid record — short,
//     checksum mismatch, or out-of-sequence — as the end of the log,
//     truncates there, and continues. A crash mid-append is therefore never
//     fatal; at most the final unacknowledged round is lost.
//   - Degradation over wedging: once the disk persistently fails, the log
//     goes sticky-degraded — appends turn into cheap error returns, the
//     engine keeps applying in memory and serving reads, and the condition
//     is surfaced through Stats rather than blocking the ingest loop.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"dfpr/internal/graph"
)

// Record is one logged ingest round: the merged batch that produced graph
// version Seq, the universe size N after it applied, and the string keys
// interned for ids [KeyBase, KeyBase+len(Keys)) when the round first made
// them durable (keyed engines only).
type Record struct {
	Seq     uint64
	N       uint64
	Del     []graph.Edge
	Ins     []graph.Edge
	KeyBase uint32
	Keys    []string
}

// Framing: u32 payload length, u32 CRC-32C of the payload, payload. The
// length is bounded so a corrupt length field cannot ask recovery to
// allocate gigabytes before the checksum gets a chance to reject it.
const (
	frameHeader  = 8
	recMagic     = 0xd1 // payload leading byte, catches frame/payload confusion
	maxRecordLen = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errShortRecord marks a record whose frame or payload extends past the end
// of the segment — a torn tail.
var errShortRecord = errors.New("wal: truncated record")

// ErrCorrupt marks a record whose checksum or structure is invalid.
var ErrCorrupt = errors.New("wal: corrupt record")

// appendRecord frames and appends one record.
func appendRecord(dst []byte, r *Record) []byte {
	le := binary.LittleEndian
	head := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame placeholder
	body := len(dst)
	dst = append(dst, recMagic)
	dst = le.AppendUint64(dst, r.Seq)
	dst = le.AppendUint64(dst, r.N)
	dst = le.AppendUint32(dst, r.KeyBase)
	dst = le.AppendUint32(dst, uint32(len(r.Keys)))
	for _, k := range r.Keys {
		dst = le.AppendUint32(dst, uint32(len(k)))
		dst = append(dst, k...)
	}
	dst = appendEdges(dst, r.Del)
	dst = appendEdges(dst, r.Ins)
	payload := dst[body:]
	le.PutUint32(dst[head:], uint32(len(payload)))
	le.PutUint32(dst[head+4:], crc32.Checksum(payload, crcTable))
	return dst
}

func appendEdges(dst []byte, es []graph.Edge) []byte {
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(len(es)))
	for _, e := range es {
		dst = le.AppendUint32(dst, e.U)
		dst = le.AppendUint32(dst, e.V)
	}
	return dst
}

// parseRecord decodes the record framed at the start of b, returning the
// bytes it consumed. errShortRecord means b ends inside the record (torn
// tail); ErrCorrupt means the frame is complete but invalid.
func parseRecord(b []byte) (Record, int, error) {
	le := binary.LittleEndian
	if len(b) < frameHeader {
		return Record{}, 0, errShortRecord
	}
	n := int(le.Uint32(b))
	if n == 0 || n > maxRecordLen {
		return Record{}, 0, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	if len(b) < frameHeader+n {
		return Record{}, 0, errShortRecord
	}
	payload := b[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, crcTable) != le.Uint32(b[4:]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r, err := parsePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return r, frameHeader + n, nil
}

func parsePayload(p []byte) (Record, error) {
	le := binary.LittleEndian
	var r Record
	if len(p) < 1+8+8+4+4 || p[0] != recMagic {
		return r, fmt.Errorf("%w: malformed payload", ErrCorrupt)
	}
	r.Seq = le.Uint64(p[1:])
	r.N = le.Uint64(p[9:])
	r.KeyBase = le.Uint32(p[17:])
	nKeys := int(le.Uint32(p[21:]))
	off := 25
	if nKeys > 0 {
		r.Keys = make([]string, 0, min(nKeys, len(p)/4))
		for i := 0; i < nKeys; i++ {
			if off+4 > len(p) {
				return r, fmt.Errorf("%w: key table overruns payload", ErrCorrupt)
			}
			kl := int(le.Uint32(p[off:]))
			off += 4
			if kl < 0 || off+kl > len(p) {
				return r, fmt.Errorf("%w: key length overruns payload", ErrCorrupt)
			}
			r.Keys = append(r.Keys, string(p[off:off+kl]))
			off += kl
		}
	}
	var err error
	if r.Del, off, err = parseEdges(p, off); err != nil {
		return r, err
	}
	if r.Ins, off, err = parseEdges(p, off); err != nil {
		return r, err
	}
	if off != len(p) {
		return r, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p)-off)
	}
	return r, nil
}

func parseEdges(p []byte, off int) ([]graph.Edge, int, error) {
	le := binary.LittleEndian
	if off+4 > len(p) {
		return nil, off, fmt.Errorf("%w: edge list overruns payload", ErrCorrupt)
	}
	n := int(le.Uint32(p[off:]))
	off += 4
	if n == 0 {
		return nil, off, nil
	}
	if off+8*n > len(p) {
		return nil, off, fmt.Errorf("%w: %d edges overrun payload", ErrCorrupt, n)
	}
	es := make([]graph.Edge, n)
	for i := range es {
		es[i] = graph.Edge{U: le.Uint32(p[off:]), V: le.Uint32(p[off+4:])}
		off += 8
	}
	return es, off, nil
}
