// Package testutil holds helpers shared by this module's test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakCheck captures the current goroutine count and returns a wait
// function that fails the test if the count has not settled back to that
// baseline within two seconds. The grace period plus the GC nudges cover
// goroutines that are finishing but not yet joined (timer callbacks,
// AfterFunc bodies); a real leak — a worker parked forever — stays above
// the baseline and trips the deadline.
//
// Usage, at the point the baseline should be taken:
//
//	waitJoined := testutil.LeakCheck(t, "cancel")
//	... exercise the engine ...
//	waitJoined()
//
// what names the phase for the failure message ("Rank cancel", "Close").
func LeakCheck(t testing.TB, what string) func() {
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				t.Fatalf("goroutines leaked: %d before, %d after %s",
					before, runtime.NumGoroutine(), what)
			}
			runtime.GC()
			time.Sleep(10 * time.Millisecond)
		}
	}
}
