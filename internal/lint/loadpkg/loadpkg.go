// Package loadpkg is the driver side of prlint: it loads type-checked
// packages for the analyzers in internal/lint to run over, executes them,
// and applies the "//lint:allow" suppression protocol to their findings.
//
// Loading works without golang.org/x/tools/go/packages by leaning on the go
// command itself: `go list -export -json -deps` compiles every dependency
// and reports the export-data file of each, so a package can be parsed from
// source and type-checked with the standard library's gc importer resolving
// imports from those files. The same mechanism backs `go vet`'s own driver;
// doing it here keeps the module dependency-free.
package loadpkg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"dfpr/internal/lint/analysis"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg mirrors the fields of `go list -json` this driver consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
}

// Load lists patterns in dir with the go command, then parses and
// type-checks every non-standard-library package the patterns matched.
// With tests set, the in-package and external test variants are loaded too
// (their _test.go files included), mirroring `go vet`'s coverage.
func Load(dir string, patterns []string, tests bool) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,ForTest"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path → export-data file
	var roots []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		// Test variants list as "path [path.test]"; their export data serves
		// the plain path only when no non-variant record provides one (the
		// variant is a superset, compiled with the same non-test sources).
		path := strings.TrimSuffix(p.ImportPath, " ["+p.ForTest+".test]")
		if p.Export != "" {
			if _, ok := exports[path]; !ok || p.ForTest == "" {
				exports[path] = p.Export
			}
		}
		switch {
		case p.Standard, p.DepOnly:
		case strings.HasSuffix(p.ImportPath, ".test"):
			// The generated test-binary main package: nothing human-written.
		default:
			q := p
			roots = append(roots, &q)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, p := range roots {
		pkg, err := check(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter returns a gc-export-data importer resolving import paths
// through find.
func exportImporter(fset *token.FileSet, find func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := find(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Syntax:     syntax,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// A Finding is one surviving diagnostic: analyzer name, resolved position,
// message.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run applies every analyzer to every package, filters the diagnostics
// through the //lint:allow suppressions, and returns the survivors sorted by
// position. Malformed suppressions (no analyzer name, or no reason) are
// themselves findings — an allow that does not say why is documentation
// debt, not a waiver.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	seen := map[string]bool{} // dedup across test-variant repeats of a file
	for _, pkg := range pkgs {
		allows, bad := suppressions(pkg)
		for _, f := range bad {
			key := f.Analyzer + "\x00" + f.Pos.String() + "\x00" + f.Message
			if !seen[key] {
				seen[key] = true
				findings = append(findings, f)
			}
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if allows[allowKey{file: pos.Filename, line: pos.Line, analyzer: a.Name}] {
					return
				}
				key := a.Name + "\x00" + pos.String() + "\x00" + d.Message
				if seen[key] {
					return
				}
				seen[key] = true
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowPrefix is the suppression directive: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// waives diagnostics of that analyzer on its own line — or, when the
// comment stands alone on a line, on the line below it. The reason is
// mandatory: a suppression must explain which documented exception to the
// invariant it encodes.
const allowPrefix = "//lint:allow"

// suppressions scans a package's comments for //lint:allow directives,
// returning the waiver set and a finding for every malformed directive.
func suppressions(pkg *Package) (map[allowKey]bool, []Finding) {
	allows := map[allowKey]bool{}
	src := map[string][]byte{}
	var bad []Finding
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Finding{Analyzer: "lint", Pos: pos,
						Message: "lint:allow needs an analyzer name and a reason"})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Finding{Analyzer: "lint", Pos: pos,
						Message: fmt.Sprintf("lint:allow %s needs a reason", fields[0])})
					continue
				}
				// The directive covers its own line; a standalone comment
				// (nothing but whitespace before it on the line) covers the
				// next line instead — the form used above a flagged statement.
				allows[allowKey{file: pos.Filename, line: pos.Line, analyzer: fields[0]}] = true
				if startsLine(src, pos) {
					allows[allowKey{file: pos.Filename, line: pos.Line + 1, analyzer: fields[0]}] = true
				}
			}
		}
	}
	return allows, bad
}

// startsLine reports whether the source position has only whitespace before
// it on its line, using the lazily read file contents in src.
func startsLine(src map[string][]byte, pos token.Position) bool {
	b, ok := src[pos.Filename]
	if !ok {
		b, _ = os.ReadFile(pos.Filename)
		src[pos.Filename] = b
	}
	// Offset points at the "//"; walk back to the preceding newline.
	if pos.Offset > len(b) {
		return false
	}
	for i := pos.Offset - 1; i >= 0; i-- {
		switch b[i] {
		case '\n':
			return true
		case ' ', '\t':
		default:
			return false
		}
	}
	return true
}
