package dfpr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
)

// TestKeyedLifecycle walks the string-keyed happy path end to end: Open,
// keyed submissions, keyed reads, id round-trips, keyed deletions.
func TestKeyedLifecycle(t *testing.T) {
	ctx := context.Background()
	eng, err := Open(WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if !eng.Keyed() {
		t.Fatal("Open built an unkeyed engine")
	}
	tk, err := eng.SubmitKeyed(ctx, nil, []KeyEdge{
		{From: "alice", To: "bob"},
		{From: "bob", To: "carol"},
		{From: "carol", To: "alice"},
		{From: "dave", To: "alice"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if eng.Keys() != 4 {
		t.Fatalf("Keys = %d, want 4", eng.Keys())
	}
	// First-mention order assigns dense ids.
	for i, k := range []Key{"alice", "bob", "carol", "dave"} {
		id, ok := eng.Resolve(k)
		if !ok || id != uint32(i) {
			t.Fatalf("Resolve(%q) = %d, %v", k, id, ok)
		}
		back, ok := eng.KeyOf(uint32(i))
		if !ok || back != k {
			t.Fatalf("KeyOf(%d) = %q, %v", i, back, ok)
		}
	}
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 4 {
		t.Fatalf("N = %d, want 4", v.N())
	}
	sa, ok := v.ScoreOfKey("alice")
	if !ok || sa <= 0 {
		t.Fatalf("ScoreOfKey(alice) = %g, %v", sa, ok)
	}
	if _, ok := v.ScoreOfKey("mallory"); ok {
		t.Fatal("unknown key scored")
	}
	// alice has two in-links (carol, dave) — she should out-rank dave, who
	// has none but his self-loop.
	sd, _ := v.ScoreOfKey("dave")
	if sa <= sd {
		t.Errorf("alice %g should outrank dave %g", sa, sd)
	}
	top := v.TopKKeys(4)
	if len(top) != 4 || top[0].Key == "" {
		t.Fatalf("TopKKeys = %+v", top)
	}
	if top[0].Key != "alice" {
		t.Errorf("top key %q, want alice", top[0].Key)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("TopKKeys not descending")
		}
	}

	// Keyed deletion of an existing edge moves ranks; deletion of edges
	// between unknown keys is dropped without growing the key space.
	if _, err := eng.ApplyKeyed(ctx, []KeyEdge{{From: "dave", To: "alice"}, {From: "x", To: "y"}}, nil); err != nil {
		t.Fatal(err)
	}
	if eng.Keys() != 4 {
		t.Fatalf("deletion grew the key space to %d", eng.Keys())
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	v2, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	sa2, _ := v2.ScoreOfKey("alice")
	if sa2 >= sa {
		t.Errorf("alice's rank did not drop after losing an in-link: %g → %g", sa, sa2)
	}
}

// TestViewKeyVersionPinning is the versioned-length contract: a view only
// resolves keys that existed at its version, even though the shared interner
// has moved on.
func TestViewKeyVersionPinning(t *testing.T) {
	ctx := context.Background()
	eng, err := Open(WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.ApplyKeyed(ctx, nil, []KeyEdge{{From: "a", To: "b"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	v1, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyKeyed(ctx, nil, []KeyEdge{{From: "c", To: "a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	v2, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	// The engine resolves "c" (it is interned), but the pinned v1 must not:
	// c did not exist at v1's version.
	if _, ok := eng.Resolve("c"); !ok {
		t.Fatal("engine lost key c")
	}
	if _, ok := v1.ScoreOfKey("c"); ok {
		t.Error("old view resolved a key interned after its version")
	}
	if _, ok := v1.KeyOf(2); ok {
		t.Error("old view reverse-resolved an id beyond its universe")
	}
	if s, ok := v2.ScoreOfKey("c"); !ok || s <= 0 {
		t.Errorf("new view misses c: %g %v", s, ok)
	}
	// DeltaKeys across the growth names the newcomer with From 0.
	dk := v2.DeltaKeys(v1)
	var sawC bool
	for _, m := range dk {
		if m.Key == "c" {
			sawC = true
			if m.From != 0 {
				t.Errorf("new key c reports From %g, want 0", m.From)
			}
		}
	}
	if !sawC {
		t.Error("DeltaKeys across growth did not report the new key")
	}
}

// TestKeyedErrors pins the failure modes: keyed writes on a dense engine,
// empty keys, and keyed reads degrading to misses instead of panics.
func TestKeyedErrors(t *testing.T) {
	ctx := context.Background()
	dense, err := New(4, []Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer dense.Close()
	if _, err := dense.SubmitKeyed(ctx, nil, []KeyEdge{{From: "a", To: "b"}}); !errors.Is(err, ErrNotKeyed) {
		t.Errorf("SubmitKeyed on dense engine: %v", err)
	}
	if _, err := dense.ApplyKeyed(ctx, nil, []KeyEdge{{From: "a", To: "b"}}); !errors.Is(err, ErrNotKeyed) {
		t.Errorf("ApplyKeyed on dense engine: %v", err)
	}
	if dense.Keyed() || dense.Keys() != 0 {
		t.Error("dense engine claims a key space")
	}
	if _, ok := dense.Resolve("a"); ok {
		t.Error("dense engine resolved a key")
	}
	if _, err := dense.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := dense.View()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.ScoreOfKey("a"); ok {
		t.Error("dense view scored a key")
	}
	if top := v.TopKKeys(2); len(top) != 2 || top[0].Key != "" {
		t.Errorf("dense TopKKeys = %+v (want empty keys)", top)
	}

	keyed, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer keyed.Close()
	if _, err := keyed.ApplyKeyed(ctx, nil, []KeyEdge{{From: "", To: "b"}}); err == nil {
		t.Error("empty key accepted")
	}
}

// TestScoreOfKeyZeroAllocs is the acceptance criterion for the keyed hot
// path: a ScoreOfKey hit performs zero allocations.
func TestScoreOfKeyZeroAllocs(t *testing.T) {
	ctx := context.Background()
	eng, err := Open(WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var ins []KeyEdge
	for i := 0; i < 256; i++ {
		ins = append(ins, KeyEdge{From: fmt.Sprintf("u%03d", i), To: fmt.Sprintf("u%03d", (i+1)%256)})
	}
	if _, err := eng.ApplyKeyed(ctx, nil, ins); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, ok := v.ScoreOfKey("u007"); !ok {
			t.Fatal("lookup failed")
		}
	}); avg != 0 {
		t.Errorf("ScoreOfKey allocates %.1f per call, want 0", avg)
	}
	// Warm keyed top-k into a recycled buffer allocates nothing either.
	buf := make([]RankedKey, 0, 8)
	v.TopKKeys(8)
	if avg := testing.AllocsPerRun(200, func() {
		buf = v.AppendTopKKeys(buf[:0], 8)
	}); avg != 0 {
		t.Errorf("warm AppendTopKKeys allocates %.1f per call, want 0", avg)
	}
}

// TestKeyedDenseInterop: on a keyed engine the key space owns the id
// space. Dense writes are allowed WITHIN it (ids the interner has handed
// out — the resolve-once-write-densely pattern) but may not grow past it:
// a dense-created vertex under a not-yet-interned id would later be
// aliased by a fresh key, which would inherit the vertex's score and
// resolve on views older than the key. The rejection is what makes key
// version pinning sound.
func TestKeyedDenseInterop(t *testing.T) {
	ctx := context.Background()
	eng, err := Open(WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.ApplyKeyed(ctx, nil, []KeyEdge{{From: "a", To: "b"}, {From: "b", To: "c"}}); err != nil {
		t.Fatal(err)
	}
	// Dense write among interned ids: fine (a resolved c→a edge).
	cid, _ := eng.Resolve("c")
	aid, _ := eng.Resolve("a")
	if _, err := eng.Apply(ctx, nil, []Edge{{U: cid, V: aid}}); err != nil {
		t.Fatalf("dense write within the key space rejected: %v", err)
	}
	// Dense growth past the key space: rejected, so no unkeyed vertex can
	// ever be aliased by a later intern.
	if _, err := eng.Apply(ctx, nil, []Edge{{U: 0, V: 5}}); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("dense growth past the key space: %v", err)
	}
	if _, err := eng.Grow(ctx, 10); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("Grow past the key space: %v", err)
	}
	if _, err := eng.Rank(ctx); err != nil {
		t.Fatal(err)
	}
	v, err := eng.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 3 || eng.Keys() != 3 {
		t.Fatalf("N = %d, Keys = %d (want 3, 3)", v.N(), eng.Keys())
	}
	// The would-be alias: interning a fresh key now must NOT resolve on
	// the already-published view.
	if _, err := eng.ApplyKeyed(ctx, nil, []KeyEdge{{From: "zed", To: "a"}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := v.ScoreOfKey("zed"); ok {
		t.Fatal("fresh key resolved on a view published before it existed")
	}
	var sum float64
	v.Range(func(_ uint32, s float64) bool { sum += s; return true })
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %g", sum)
	}
}

// TestKeyedCapBeforeIntern: a keyed batch over the WithMaxVertices bound
// is rejected BEFORE any key is interned — rejected batches must not
// consume ids (each one permanent) or the interner would grow without
// bound on rejected traffic and the engine could never accept keys again.
func TestKeyedCapBeforeIntern(t *testing.T) {
	ctx := context.Background()
	eng, err := Open(WithThreads(2), WithMaxVertices(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.ApplyKeyed(ctx, nil, []KeyEdge{{From: "a", To: "b"}, {From: "c", To: "a"}}); err != nil {
		t.Fatal(err)
	}
	over := []KeyEdge{{From: "d", To: "e"}, {From: "f", To: "a"}}
	if _, err := eng.ApplyKeyed(ctx, nil, over); !errors.Is(err, ErrTooManyVertices) {
		t.Fatalf("over-bound keyed batch: %v", err)
	}
	if eng.Keys() != 3 {
		t.Fatalf("rejected batch consumed ids: Keys = %d, want 3", eng.Keys())
	}
	// Still room for exactly one more key; duplicates inside the batch
	// count once.
	if _, err := eng.ApplyKeyed(ctx, nil, []KeyEdge{{From: "d", To: "a"}, {From: "d", To: "b"}}); err != nil {
		t.Fatalf("in-bound keyed batch rejected: %v", err)
	}
	if eng.Keys() != 4 {
		t.Fatalf("Keys = %d, want 4", eng.Keys())
	}
}
