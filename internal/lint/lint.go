// Package lint assembles prlint's analyzer suite.
//
// Each analyzer machine-checks one invariant of this engine that otherwise
// lives only in code comments and reviewer memory; see the package comment
// of each for the invariant, the failure mode it pins, and the bug that
// motivated it. DESIGN.md §10 carries the summary table.
//
// Suppressions use the shared //lint:allow protocol (see loadpkg):
//
//	e.store.Pin(s) //lint:allow pinrelease released by ring eviction below
//
// The reason is mandatory — an allow without one is itself a finding.
package lint

import (
	"dfpr/internal/lint/analysis"
	"dfpr/internal/lint/atomicfield"
	"dfpr/internal/lint/ctxflow"
	"dfpr/internal/lint/hotalloc"
	"dfpr/internal/lint/lockorder"
	"dfpr/internal/lint/pinrelease"
	"dfpr/internal/lint/senterr"
)

// Analyzers returns the full prlint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		pinrelease.Analyzer,
		senterr.Analyzer,
	}
}
