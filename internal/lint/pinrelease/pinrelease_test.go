package pinrelease_test

import (
	"testing"

	"dfpr/internal/lint/analysistest"
	"dfpr/internal/lint/pinrelease"
)

func TestPinrelease(t *testing.T) {
	analysistest.Run(t, "testdata", pinrelease.Analyzer, "a")
}
