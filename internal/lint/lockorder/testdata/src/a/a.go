// Package a exercises the lockorder analyzer: mutex rank order, the
// ingestMu leaf rule, and log-before-publish under the durability lock.
package a

import "sync"

type Update struct{}

type Version struct{}

type Store struct{}

func (s *Store) Apply(up Update) (int, *Version)               { return 0, nil }
func (s *Store) ApplyAt(up Update, seq uint64) (int, *Version) { return 0, nil }

// The store delegating to itself is below the WAL, not around it: exempt.
func (s *Store) ApplyEdges(up Update) (int, *Version) { return s.Apply(up) }

type Record struct{}

type Log struct{}

func (l *Log) Append(r *Record) error { return nil }

type durability struct {
	mu  sync.Mutex
	log *Log
}

type Engine struct {
	mu       sync.Mutex
	closeMu  sync.RWMutex
	viewMu   sync.Mutex
	subMu    sync.Mutex
	ingestMu sync.Mutex
	store    *Store
	dur      *durability
}

func (e *Engine) Rank() {}

// Nested in documented order: fine.
func (e *Engine) ordered() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.subMu.Lock()
	defer e.subMu.Unlock()
}

// Inverted: subMu is rank 3, mu is rank 0.
func (e *Engine) inverted() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	e.mu.Lock() // want `inverted acquires Engine\.mu while holding Engine\.subMu`
	defer e.mu.Unlock()
}

// A read lock participates in the order like a write lock.
func (e *Engine) invertedRead() {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	e.mu.Lock() // want `invertedRead acquires Engine\.mu while holding Engine\.closeMu`
	defer e.mu.Unlock()
}

// An explicit release ends the interval: re-acquiring in a new order is fine.
func (e *Engine) sequential() {
	e.subMu.Lock()
	e.subMu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// The ingest loop must drop ingestMu before publishing.
func (e *Engine) drainHeld(up Update) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.storeApply(up) // want `drainHeld calls storeApply while holding Engine\.ingestMu`
}

func (e *Engine) drainRankHeld() {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.Rank() // want `drainRankHeld calls Rank while holding Engine\.ingestMu`
}

// Dropping ingestMu before the apply is the documented shape.
func (e *Engine) drainReleased(up Update) {
	e.ingestMu.Lock()
	e.ingestMu.Unlock()
	e.storeApply(up)
}

// storeApply is the one sanctioned publish point; append-before-apply under
// the durability mutex is log-before-publish done right.
func (e *Engine) storeApply(up Update) *Version {
	d := e.dur
	if d == nil {
		_, next := e.store.Apply(up)
		return next
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	_ = d.log.Append(&Record{})
	_, next := e.store.Apply(up)
	return next
}

// Publishing under the durability lock without an append loses the record
// ordering; publishing outside storeApply bypasses the WAL entirely.
func (e *Engine) skipsLog(up Update) {
	d := e.dur
	d.mu.Lock()
	defer d.mu.Unlock()
	e.store.Apply(up) // want `skipsLog publishes through Store\.Apply under the durability lock without a WAL append` `skipsLog publishes through Store\.Apply directly`
}

func (e *Engine) bypasses(up Update) {
	e.store.ApplyAt(up, 1) // want `bypasses publishes through Store\.ApplyAt directly`
}

// A suppression carries the justification for the one legitimate bypass
// (recovery replays records that are already durable).
func (e *Engine) replay(up Update) {
	e.store.ApplyAt(up, 1) //lint:allow lockorder replayed records are already durable
}

// A closure is its own scope: the goroutine holds nothing from the
// spawner's stack.
func (e *Engine) spawns() {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	go func() {
		e.mu.Lock()
		defer e.mu.Unlock()
	}()
}
