// Package fault implements the paper's fault-simulation substrate (§5.1.6):
// random thread delays injected with a per-vertex probability, and
// crash-stop failures where a designated worker permanently stops executing
// at a pseudo-random point during rank computation.
//
// The injector is cooperative: algorithm kernels call AfterVertex once per
// vertex rank computation, which is exactly the paper's injection point ("a
// random thread delay ... can occur after computing the rank of any vertex
// in an iteration with a certain probability"). Crash-stop means the worker
// goroutine returns and never re-enters the work pool; memory it already
// wrote stays visible (no byzantine behaviour), matching the crash-stop
// model.
//
// Everything is deterministic under a fixed seed so fault experiments are
// reproducible.
package fault

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// Plan describes the faults to inject into one algorithm run.
type Plan struct {
	// DelayProb is the probability that a worker sleeps after computing one
	// vertex rank. The paper sweeps 1e-9 … 1e-6 (expected |V|·p sleeps per
	// iteration).
	DelayProb float64
	// DelayDur is the sleep duration for one injected delay. The paper uses
	// 50/100/200 ms on billion-edge graphs; scale it to your graph size so
	// it stays "sizeable relative to the iteration time".
	DelayDur time.Duration
	// CrashWorkers lists worker ids that crash-stop during the run.
	CrashWorkers []int
	// CrashHorizon bounds the pseudo-random crash point: each crashing
	// worker stops after processing k vertices, k drawn uniformly from
	// [0, CrashHorizon). Zero means crash immediately on first check.
	CrashHorizon int
	// Seed makes the injection reproducible.
	Seed int64
}

// None reports whether the plan injects no faults at all.
func (p Plan) None() bool {
	return p.DelayProb <= 0 && len(p.CrashWorkers) == 0
}

// Injector is the runtime form of a Plan for a fixed worker count. Methods
// with a worker argument are safe for concurrent use by distinct workers;
// per-worker state is unshared.
type Injector struct {
	workers  int
	delayDur time.Duration

	// Per-worker state, cache-line padded to avoid false sharing on the
	// processed counters.
	state []workerState

	crashedCount int64
}

type workerState struct {
	rng       *rand.Rand
	delayProb float64
	crashAt   int64 // processed-vertex count at which this worker crashes; -1 = never
	processed int64
	crashed   uint32
	_         [4]uint64 // pad
}

// NewInjector materialises a plan for the given worker count. A nil return
// means the plan injects nothing; kernels treat a nil *Injector as "no
// faults" with zero per-vertex overhead.
func NewInjector(workers int, p Plan) *Injector {
	if p.None() {
		return nil
	}
	in := &Injector{
		workers:  workers,
		delayDur: p.DelayDur,
		state:    make([]workerState, workers),
	}
	seeder := rand.New(rand.NewSource(p.Seed))
	for w := 0; w < workers; w++ {
		in.state[w].rng = rand.New(rand.NewSource(seeder.Int63()))
		in.state[w].delayProb = p.DelayProb
		in.state[w].crashAt = -1
	}
	for _, w := range p.CrashWorkers {
		if w < 0 || w >= workers {
			continue
		}
		if p.CrashHorizon > 0 {
			in.state[w].crashAt = int64(seeder.Intn(p.CrashHorizon))
		} else {
			in.state[w].crashAt = 0
		}
	}
	return in
}

// AfterVertex is called by a kernel after computing one vertex rank. It may
// sleep (random delay) and reports whether the worker has now crash-stopped;
// a true return obliges the caller to stop the worker immediately.
func (in *Injector) AfterVertex(worker int) (crashed bool) {
	st := &in.state[worker]
	if atomic.LoadUint32(&st.crashed) == 1 {
		return true
	}
	n := atomic.AddInt64(&st.processed, 1)
	if st.crashAt >= 0 && n > st.crashAt {
		atomic.StoreUint32(&st.crashed, 1)
		atomic.AddInt64(&in.crashedCount, 1)
		return true
	}
	if st.delayProb > 0 && st.rng.Float64() < st.delayProb {
		time.Sleep(in.delayDur)
	}
	return false
}

// AtChunk is called by a kernel when the worker acquires a new work chunk.
// It reports whether the worker's crash point has been reached (also
// marking the worker crashed), without counting work. With CrashHorizon 0
// the designated workers crash deterministically at their first chunk,
// which keeps crash experiments reproducible even when the Go scheduler
// serialises workers (e.g. on a single-core host).
func (in *Injector) AtChunk(worker int) (crashed bool) {
	st := &in.state[worker]
	if atomic.LoadUint32(&st.crashed) == 1 {
		return true
	}
	if st.crashAt >= 0 && atomic.LoadInt64(&st.processed) >= st.crashAt {
		atomic.StoreUint32(&st.crashed, 1)
		atomic.AddInt64(&in.crashedCount, 1)
		return true
	}
	return false
}

// Crashed reports whether the worker has crash-stopped.
func (in *Injector) Crashed(worker int) bool {
	return atomic.LoadUint32(&in.state[worker].crashed) == 1
}

// CrashedCount returns how many workers have crash-stopped so far.
func (in *Injector) CrashedCount() int {
	return int(atomic.LoadInt64(&in.crashedCount))
}

// Processed returns how many vertices the worker has processed (diagnostic).
func (in *Injector) Processed(worker int) int64 {
	return atomic.LoadInt64(&in.state[worker].processed)
}

// CrashSet returns the first k worker ids {0..k-1} clipped to the worker
// count, the subset convention used by the Figure 9 experiment.
func CrashSet(k, workers int) []int {
	if k > workers {
		k = workers
	}
	out := make([]int, 0, k)
	for w := 0; w < k; w++ {
		out = append(out, w)
	}
	return out
}
