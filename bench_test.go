package dfpr

// One benchmark per table and figure of the paper's evaluation (§5), plus
// micro-benchmarks for the kernels the figures bottleneck on. The figure
// benchmarks run the harness drivers in Quick mode at reduced scale so the
// full suite completes in a couple of minutes; `cmd/prbench` runs the
// full-scale versions.

import (
	"testing"
	"time"

	"dfpr/internal/batch"
	"dfpr/internal/core"
	"dfpr/internal/fault"
	"dfpr/internal/gen"
	"dfpr/internal/harness"
)

// benchOpts mirror the harness test options: tiny but real.
func benchOpts() harness.Options {
	return harness.Options{Scale: 0.15, Threads: 4, Quick: true, Seed: 11}
}

func runExperiment(b *testing.B, id string) {
	exp, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		secs := exp.Run(benchOpts())
		if len(secs) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkFig1_BarrierWait regenerates Figure 1 (computation vs barrier
// wait over chunk sizes).
func BenchmarkFig1_BarrierWait(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable1_TemporalDatasets regenerates Table 1.
func BenchmarkTable1_TemporalDatasets(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2_StaticDatasets regenerates Table 2.
func BenchmarkTable2_StaticDatasets(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig5_TemporalGraphs regenerates Figure 5 (six approaches on
// temporal streams).
func BenchmarkFig5_TemporalGraphs(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6_StrongScaling regenerates Figure 6 (thread scaling).
func BenchmarkFig6_StrongScaling(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7_BatchFractionSweep regenerates Figure 7 (runtime and error
// over batch fractions).
func BenchmarkFig7_BatchFractionSweep(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkStability regenerates the §5.2.3 delete-then-reinsert study.
func BenchmarkStability(b *testing.B) { runExperiment(b, "stability") }

// BenchmarkFig8_RandomDelays regenerates Figure 8 (random thread delays).
func BenchmarkFig8_RandomDelays(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9_ThreadCrashes regenerates Figure 9 (crash-stop failures).
func BenchmarkFig9_ThreadCrashes(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkDTvsND regenerates the §3.5.2 DT-vs-ND comparison.
func BenchmarkDTvsND(b *testing.B) { runExperiment(b, "dt") }

// BenchmarkTauFSweep regenerates the §4.5 frontier-tolerance sweep.
func BenchmarkTauFSweep(b *testing.B) { runExperiment(b, "tauf") }

// BenchmarkAblation runs the flag/convergence/chunk ablations.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablate") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: per-algorithm cost on a fixed mid-size update, the unit
// of work every figure above aggregates.

type fixture struct {
	in   core.Input
	cfg  core.Config
	prev []float64
}

func newFixture(class gen.Class, n, deg, size int) fixture {
	spec := gen.Spec{Name: "bench", Class: class, N: n, Deg: deg, Seed: 3}
	d := spec.Build()
	g := d.Snapshot()
	cfg := core.Config{Threads: 4, Tol: 1e-3 / float64(g.N())}
	cfg.FrontierTol = cfg.Tol
	prev := core.StaticBB(g, cfg).Ranks
	up := batch.Random(d, size, 17)
	gOld, gNew := batch.Transition(d, up)
	return fixture{
		in:  core.Input{GOld: gOld, GNew: gNew, Del: up.Del, Ins: up.Ins, Prev: prev},
		cfg: cfg,
	}
}

func benchAlgo(b *testing.B, a core.Algo, f fixture) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Run(a, f.in, f.cfg)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkAlgoStaticBB(b *testing.B) {
	benchAlgo(b, core.AlgoStaticBB, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoStaticLF(b *testing.B) {
	benchAlgo(b, core.AlgoStaticLF, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoNDBB(b *testing.B) {
	benchAlgo(b, core.AlgoNDBB, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoNDLF(b *testing.B) {
	benchAlgo(b, core.AlgoNDLF, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoDTLF(b *testing.B) {
	benchAlgo(b, core.AlgoDTLF, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoDFBB(b *testing.B) {
	benchAlgo(b, core.AlgoDFBB, newFixture(gen.Web, 1<<13, 12, 16))
}

func BenchmarkAlgoDFLF(b *testing.B) {
	benchAlgo(b, core.AlgoDFLF, newFixture(gen.Web, 1<<13, 12, 16))
}

// BenchmarkAlgoDFLFRoad exercises the sparse/high-diameter case the paper
// highlights as DF's best regime.
func BenchmarkAlgoDFLFRoad(b *testing.B) {
	benchAlgo(b, core.AlgoDFLF, newFixture(gen.Road, 1<<13, 3, 8))
}

// BenchmarkAlgoDFLFUnderDelays measures the fault-injected hot path.
func BenchmarkAlgoDFLFUnderDelays(b *testing.B) {
	f := newFixture(gen.Web, 1<<12, 8, 8)
	f.cfg.Fault = fault.Plan{DelayProb: 1e-4, DelayDur: 100 * time.Microsecond, Seed: 9}
	benchAlgo(b, core.AlgoDFLF, f)
}
