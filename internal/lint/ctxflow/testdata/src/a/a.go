// Package a exercises the ctxflow analyzer: accepted contexts must govern
// the work done under them.
package a

import "context"

type engine struct{}

func (e *engine) rank(ctx context.Context) error { return ctx.Err() }

// Ignored flags: the exported API accepts a ctx and never consults it.
func (e *engine) Ignored(ctx context.Context) error { // want `exported Ignored takes a context.Context but never uses it`
	return nil
}

// Blank flags: discarding by name is still discarding.
func (e *engine) Blank(_ context.Context) error { // want `exported Blank discards its context.Context parameter`
	return nil
}

// ValueOnly flags: Value does not carry cancellation.
func ValueOnly(ctx context.Context) interface{} { // want `exported ValueOnly uses its context only for Value`
	return ctx.Value("k")
}

// Detached flags: receiving a ctx and starting work under Background
// disconnects that work from the caller's cancellation.
func Detached(ctx context.Context, e *engine) error {
	_ = ctx.Err()
	return e.rank(context.Background()) // want `Detached receives a ctx but starts work under context.Background`
}

// Threaded is clean: the context reaches the blocking callee.
func Threaded(ctx context.Context, e *engine) error {
	return e.rank(ctx)
}

// Selected is clean: the context gates a select.
func Selected(ctx context.Context, ch <-chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// ErrChecked is clean: an early Err probe is a legitimate (if minimal) use.
func ErrChecked(ctx context.Context) error {
	return ctx.Err()
}

// unexportedIgnored is not flagged for the unused param (internal helpers
// may stage a ctx for symmetry), but a Background detach still flags.
func unexportedIgnored(ctx context.Context, e *engine) error {
	return e.rank(context.Background()) // want `unexportedIgnored receives a ctx but starts work under context.Background`
}

// NoCtx has no context parameter: Background here is the root of a call
// tree, which is exactly what Background is for.
func NoCtx(e *engine) error {
	return e.rank(context.Background())
}
