// Faultsim: demonstrate the fault tolerance of lock-free Dynamic Frontier
// PageRank (the paper's §5.3–§5.4, Figures 8–9, as a runnable program),
// chaos-tested through the public API: converge cleanly, arm a FaultPlan,
// apply a batch, and watch Rank.
//
// The example runs the same batch update three ways:
//
//  1. fault-free, as the baseline;
//  2. with random thread delays injected after vertex computations —
//     barrier-based DFBB stalls on every delayed straggler while DFLF's
//     remaining workers keep making progress;
//  3. with half the workers crash-stopping mid-computation — DFBB deadlocks
//     (the barrier detects it deterministically) while DFLF still converges
//     to the correct ranks.
//
// Run with:
//
//	go run ./examples/faultsim
package main

import (
	"context"
	"fmt"
	"time"

	"dfpr"
	"dfpr/internal/batch"
	"dfpr/internal/exutil"
	"dfpr/internal/gen"
	"dfpr/internal/topk"
)

func main() {
	ctx := context.Background()
	const workers = 8
	spec := gen.Spec{Name: "web", Class: gen.Web, N: 1 << 13, Deg: 12, Seed: 99}
	d := spec.Build()
	n, edges := exutil.Flatten(d)
	tol := 1e-3 / float64(n)
	up := batch.Random(d, d.M()/1000, 5)

	newEngine := func(a dfpr.Algorithm) *dfpr.Engine {
		eng, err := dfpr.New(n, edges,
			dfpr.WithAlgorithm(a),
			dfpr.WithThreads(workers),
			dfpr.WithTolerance(tol),
			dfpr.WithFrontierTolerance(tol),
			// Fault drills want the failure itself, not a rescue attempt
			// that would run under the same injected faults.
			dfpr.WithStaticFallback(false),
		)
		if err != nil {
			panic(err)
		}
		return eng
	}

	// Fault-free reference ranks on the post-update graph.
	refEng := newEngine(dfpr.DFBB)
	if _, err := refEng.Rank(ctx); err != nil {
		panic(err)
	}
	if _, err := refEng.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
		panic(err)
	}
	refRes, err := refEng.Rank(ctx)
	if err != nil {
		panic(err)
	}
	ref := refRes.View

	report := func(label string, a dfpr.Algorithm, plan dfpr.FaultPlan) {
		eng := newEngine(a)
		if _, err := eng.Rank(ctx); err != nil { // clean convergence first
			panic(err)
		}
		if _, err := eng.Apply(ctx, exutil.Convert(up.Del), exutil.Convert(up.Ins)); err != nil {
			panic(err)
		}
		if err := eng.SetFaultPlan(plan); err != nil { // faults hit only the dynamic refresh
			panic(err)
		}
		res, err := eng.Rank(ctx)
		var status string
		if err != nil {
			// A failed Rank carries diagnostics but no rank vector.
			status = fmt.Sprintf("FAILED (%d workers crashed): %v", res.CrashedWorkers, err)
		} else {
			status = fmt.Sprintf("converged in %s (%d iterations, err %.1e)",
				topk.FormatDur(res.Elapsed), res.Iterations, exutil.LInf(res.View, ref))
		}
		fmt.Printf("  %-28s %s\n", label+":", status)
	}

	fmt.Printf("graph: %d vertices, %d edges; batch: %d updates; %d workers\n\n",
		n, d.M(), up.Size(), workers)

	fmt.Println("fault-free baseline")
	report("DFBB", dfpr.DFBB, dfpr.FaultPlan{})
	report("DFLF", dfpr.DFLF, dfpr.FaultPlan{})

	fmt.Println("\nrandom thread delays (expected ~1 sleep of 2ms per iteration)")
	delay := dfpr.FaultPlan{DelayProb: 1 / float64(n), DelayDur: 2 * time.Millisecond, Seed: 1}
	report("DFBB under delays", dfpr.DFBB, delay)
	report("DFLF under delays", dfpr.DFLF, delay)

	fmt.Printf("\ncrash-stop: %d of %d workers die mid-computation\n", workers/2, workers)
	crash := dfpr.FaultPlan{CrashWorkers: dfpr.CrashSet(workers/2, workers), CrashHorizon: n / 2, Seed: 2}
	report("DFBB with crashes", dfpr.DFBB, crash)
	report("DFLF with crashes", dfpr.DFLF, crash)

	fmt.Println("\nlock-freedom in action: the barrier-based variant cannot outlive a")
	fmt.Println("single crash, while DFLF finishes at reduced speed with correct ranks.")
}
