package core

import (
	"math"

	"dfpr/internal/graph"
)

// Reference computes high-precision PageRanks with a sequential synchronous
// power iteration. It is the accuracy yardstick of §5.1.5: the paper runs
// barrier-based static PageRank at τ=1e-100 capped at 500 iterations, which
// in IEEE-754 double precision means "iterate until the update is exactly
// stationary or the cap is hit"; we default τ to 1e-15 (below that, Jacobi
// updates dither in the last ulp) and keep the 500-iteration cap.
//
// Only Alpha, Tol and MaxIter from cfg are honoured.
func Reference(g *graph.CSR, cfg Config) []float64 {
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-15
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = DefaultMaxIter
	}
	n := g.N()
	if n == 0 {
		return nil
	}
	base := (1 - cfg.Alpha) / float64(n)
	inv := invOutDeg(g)
	r := uniformRanks(n)
	rNew := make([]float64, n)
	for it := 0; it < cfg.MaxIter; it++ {
		var dR float64
		for v := 0; v < n; v++ {
			nr := rankOfSeed(g, inv, r, cfg.Alpha, base, uint32(v))
			if d := math.Abs(nr - r[v]); d > dR {
				dR = d
			}
			rNew[v] = nr
		}
		r, rNew = rNew, r
		if dR <= cfg.Tol {
			break
		}
	}
	return r
}
