// Package hotalloc defines an analyzer keeping annotated hot-path functions
// allocation-free and lock-free.
//
// The read path of this module is built on 0-alloc point lookups — ScoreOf
// is "one bounds check and one load", ScoreOfKey adds one lock-free map hit,
// AppendTopK recycles its caller's buffer, the kernel inner sweeps run
// memory-bound over shared vectors — and those properties are load-bearing:
// they are what lets a view serve a million concurrent readers without GC
// pressure, and they are pinned empirically by TestViewQueryAllocations and
// the benchmark suite. This analyzer pins them structurally. A function
// whose doc comment carries the //dfpr:hotpath directive must not contain:
//
//   - heap allocation: make, new, &T{…}, map/slice literals, string↔[]byte
//     conversions, or closures (FuncLits capture and escape);
//   - implicit or explicit conversion of a concrete value to an interface
//     (boxing — the hidden allocation behind fmt calls and error wrapping);
//   - map writes (growth and rehash on a read path);
//   - mutex acquisition (Lock/RLock/TryLock on sync types);
//   - goroutine launches.
//
// append is deliberately NOT flagged: the Append* hot paths share their
// caller's buffer and their amortised-growth contract is documented and
// benchmarked. A documented cold fallback inside a hot function (keymap's
// dirty-tail mutex, say) carries a //lint:allow hotalloc with its reason.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"dfpr/internal/lint/analysis"
	"dfpr/internal/lint/lintutil"
)

// Directive marks a function whose body this analyzer checks.
const Directive = "//dfpr:hotpath"

// Analyzer flags allocations, boxing, map writes, locks and goroutine
// launches in //dfpr:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //dfpr:hotpath must not allocate, box values " +
		"into interfaces, write maps, take mutexes or spawn goroutines",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	lintutil.ForEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if !lintutil.HasDirective(fd, Directive) {
			return
		}
		c := &checker{pass: pass, fname: fd.Name.Name}
		if fd.Type.Results != nil {
			for _, r := range fd.Type.Results.List {
				if tv, ok := pass.TypesInfo.Types[r.Type]; ok {
					n := max(1, len(r.Names))
					for i := 0; i < n; i++ {
						c.results = append(c.results, tv.Type)
					}
				}
			}
		}
		c.stmts(fd.Body.List)
	})
	return nil, nil
}

// checker walks one hot function's body. Nested function literals are
// flagged as allocations and not descended into — their bodies run on
// whatever path invokes them, not necessarily this one.
type checker struct {
	pass    *analysis.Pass
	fname   string
	results []types.Type
}

func (c *checker) errf(pos token.Pos, format string, args ...interface{}) {
	msg := "hot path " + c.fname + ": " + format
	c.pass.Reportf(pos, msg, args...)
}

func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.GoStmt:
		c.errf(s.Pos(), "spawns a goroutine")
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			c.mapWrite(lhs)
		}
		for i, rhs := range s.Rhs {
			c.expr(rhs)
			// Boxing through assignment: a concrete value stored into an
			// interface-typed destination.
			if len(s.Lhs) == len(s.Rhs) {
				if lt, ok := c.pass.TypesInfo.Types[s.Lhs[i]]; ok {
					c.boxing(rhs, lt.Type)
				}
			}
		}
		for _, lhs := range s.Lhs {
			c.expr(lhs)
		}
	case *ast.IncDecStmt:
		c.mapWrite(s.X)
		c.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var declared types.Type
				if vs.Type != nil {
					if tv, ok := c.pass.TypesInfo.Types[vs.Type]; ok {
						declared = tv.Type
					}
				}
				for _, v := range vs.Values {
					c.expr(v)
					if declared != nil {
						c.boxing(v, declared)
					}
				}
			}
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.ReturnStmt:
		for i, r := range s.Results {
			c.expr(r)
			if i < len(c.results) {
				c.boxing(r, c.results[i])
			}
		}
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.stmt(s.Post)
		c.stmt(s.Body)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.stmt(s.Body)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		c.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Assign)
		c.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e)
		}
		c.stmts(s.Body)
	case *ast.SelectStmt:
		c.stmt(s.Body)
	case *ast.CommClause:
		c.stmt(s.Comm)
		c.stmts(s.Body)
	case *ast.DeferStmt:
		// A defer both allocates its frame on some paths and runs off the
		// fast path; the call inside still gets checked.
		c.errf(s.Pos(), "defers a call (defer frames cost on the hot path)")
		c.expr(s.Call)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Statement forms not listed (Go/Select variants already covered)
		// carry no expressions that allocate beyond what expr() sees.
	}
}

// mapWrite flags an assignment target that indexes a map.
func (c *checker) mapWrite(lhs ast.Expr) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if tv, ok := c.pass.TypesInfo.Types[ix.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			c.errf(lhs.Pos(), "writes to a map (growth and rehash on a read path)")
		}
	}
}

func (c *checker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.FuncLit:
		c.errf(e.Pos(), "declares a closure (captures escape to the heap)")
		// Do not descend: the literal's body is not this function's path.
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				c.errf(e.Pos(), "allocates (&composite literal)")
			}
		}
		c.expr(e.X)
	case *ast.CompositeLit:
		switch c.pass.TypesInfo.Types[e].Type.Underlying().(type) {
		case *types.Map:
			c.errf(e.Pos(), "allocates (map literal)")
		case *types.Slice:
			c.errf(e.Pos(), "allocates (slice literal)")
		}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.expr(kv.Value)
			} else {
				c.expr(el)
			}
		}
	case *ast.CallExpr:
		c.call(e)
	case *ast.BinaryExpr:
		c.expr(e.X)
		c.expr(e.Y)
	case *ast.ParenExpr:
		c.expr(e.X)
	case *ast.SelectorExpr:
		c.expr(e.X)
	case *ast.IndexExpr:
		c.expr(e.X)
		c.expr(e.Index)
	case *ast.SliceExpr:
		c.expr(e.X)
		c.expr(e.Low)
		c.expr(e.High)
		c.expr(e.Max)
	case *ast.StarExpr:
		c.expr(e.X)
	case *ast.TypeAssertExpr:
		c.expr(e.X)
	case *ast.KeyValueExpr:
		c.expr(e.Key)
		c.expr(e.Value)
	}
}

// call checks one call expression: builtins that allocate, conversions that
// allocate or box, mutex acquisition, and boxing of arguments into
// interface parameters.
func (c *checker) call(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	// Conversion? T(x) where T is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.conversion(call, tv.Type)
		c.expr(call.Args[0])
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.errf(call.Pos(), "allocates (make)")
			case "new":
				c.errf(call.Pos(), "allocates (new)")
			case "delete":
				c.errf(call.Pos(), "writes to a map (delete)")
			}
			for _, a := range call.Args {
				c.expr(a)
			}
			return
		}
	}
	if fn := lintutil.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		switch fn.Name() {
		case "Lock", "RLock", "TryLock", "TryRLock":
			c.errf(call.Pos(), "acquires a mutex (%s.%s)", recvTypeName(fn), fn.Name())
		}
	}
	// Boxing: concrete arguments landing in interface parameters — the
	// hidden allocation behind fmt calls and error wrapping.
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			for i, arg := range call.Args {
				if pt, ok := paramType(sig, i, call.Ellipsis.IsValid()); ok {
					c.boxing(arg, pt)
				}
			}
		}
	}
	c.expr(call.Fun)
	for _, a := range call.Args {
		c.expr(a)
	}
}

// conversion flags explicit conversions that allocate: concrete→interface
// boxing and string↔[]byte/[]rune copies.
func (c *checker) conversion(call *ast.CallExpr, to types.Type) {
	info := c.pass.TypesInfo
	from, ok := info.Types[call.Args[0]]
	if !ok {
		return
	}
	if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Type.Underlying()) && !from.IsNil() {
		c.errf(call.Pos(), "boxes a concrete value into %s", to.String())
		return
	}
	toB, toIsBasic := to.Underlying().(*types.Basic)
	_, fromIsSlice := from.Type.Underlying().(*types.Slice)
	if toIsBasic && toB.Info()&types.IsString != 0 && fromIsSlice {
		c.errf(call.Pos(), "allocates (slice→string conversion)")
	}
	if _, toIsSlice := to.Underlying().(*types.Slice); toIsSlice {
		if fromB, ok := from.Type.Underlying().(*types.Basic); ok && fromB.Info()&types.IsString != 0 {
			c.errf(call.Pos(), "allocates (string→slice conversion)")
		}
	}
}

// boxing flags a concrete, non-constant-nil value landing somewhere typed
// as a non-empty or empty interface.
func (c *checker) boxing(arg ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok || tv.IsNil() || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type.Underlying()) {
		return
	}
	c.errf(arg.Pos(), "boxes a concrete %s into %s (interface conversion allocates)", tv.Type.String(), dst.String())
}

// paramType resolves the type of parameter i of sig, unrolling the variadic
// tail; ok is false when the call spreads with ... (no boxing happens).
func paramType(sig *types.Signature, i int, ellipsis bool) (types.Type, bool) {
	n := sig.Params().Len()
	if sig.Variadic() {
		if ellipsis {
			return nil, false
		}
		if i >= n-1 {
			sl, ok := sig.Params().At(n - 1).Type().(*types.Slice)
			if !ok {
				return nil, false
			}
			return sl.Elem(), true
		}
	}
	if i >= n {
		return nil, false
	}
	return sig.Params().At(i).Type(), true
}

// recvTypeName names a method's receiver type for diagnostics.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "sync"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
