// Package pinrelease defines an analyzer pairing snapshot pins with their
// releases.
//
// snapshot.Store.Pin(seq) marks a version as held by a reader: it stays
// reachable (and keeps its CSR alive) after the retention ring trims past
// it, until a matching Release(seq). Pins nest and are counted, so a leaked
// pin is invisible — nothing crashes, the store just retains one version's
// graph forever and memory creeps. That failure mode is exactly the kind a
// machine should watch for.
//
// The analysis is lexical and intra-procedural: within one function body
// (closures are their own scopes), every call to Pin on a Store must have a
// companion Release on the same receiver expression with the same sequence
// expression. A deferred Release is exit-safe and always satisfies the
// pair. An explicit Release satisfies it only when no return statement
// sits between the Pin and the Release — an early return on that span
// leaks the pin on the error path, the classic bug.
//
// Protocols where the release legitimately lives in another function (the
// view ring pins a chain at publication and releases it at eviction) do not
// pair lexically; such a site carries //lint:allow pinrelease with a
// pointer to its releasing counterpart. A suppression is a documented
// ownership transfer, not an exemption.
package pinrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"dfpr/internal/lint/analysis"
	"dfpr/internal/lint/lintutil"
)

// Analyzer flags snapshot pins that have no dominating release.
var Analyzer = &analysis.Analyzer{
	Name: "pinrelease",
	Doc: "every snapshot.Store.Pin must be paired with a Release on all " +
		"paths (defer it, release before every return, or //lint:allow a " +
		"documented cross-function handoff)",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	lintutil.ForEachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		for _, scope := range scopes(fd.Body) {
			check(pass, fd.Name.Name, scope)
		}
	})
	return nil, nil
}

// scopes yields the function body plus each nested closure body; a pin
// taken inside a closure must be released inside it (or handed off).
func scopes(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, fl.Body)
		}
		return true
	})
	return out
}

// site is one Pin or Release call: its receiver and sequence argument,
// rendered to source text for lexical pairing.
type site struct {
	pos      token.Pos
	recv     string
	seq      string
	deferred bool
}

func check(pass *analysis.Pass, fname string, body *ast.BlockStmt) {
	var pins, releases []site
	var returns []token.Pos
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				returns = append(returns, n.Pos())
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.CallExpr:
				name, ok := storeCall(pass.TypesInfo, n)
				if !ok || len(n.Args) != 1 {
					return true
				}
				s := site{
					pos:      n.Pos(),
					recv:     lintutil.ExprString(lintutil.ReceiverExpr(n)),
					seq:      lintutil.ExprString(n.Args[0]),
					deferred: inDefer,
				}
				switch name {
				case "Pin":
					pins = append(pins, s)
				case "Release":
					releases = append(releases, s)
				}
			}
			return true
		})
	}
	walk(body, false)

	for _, pin := range pins {
		var matched, exitSafe bool
		for _, rel := range releases {
			if rel.recv != pin.recv || rel.seq != pin.seq {
				continue
			}
			matched = true
			if rel.deferred || rel.pos < pin.pos {
				// Deferred runs at every exit; a textually earlier release
				// is the loop idiom (release previous, pin next).
				exitSafe = true
				break
			}
			if !returnBetween(returns, pin.pos, rel.pos) {
				exitSafe = true
				break
			}
		}
		switch {
		case !matched:
			pass.Reportf(pin.pos, "%s pins %s.Pin(%s) with no matching Release(%s) in this function; defer the release, or //lint:allow pinrelease naming the releasing owner",
				fname, pin.recv, pin.seq, pin.seq)
		case !exitSafe:
			pass.Reportf(pin.pos, "%s releases Pin(%s) only after a return statement that can leak it; defer the release or release before every return",
				fname, pin.seq)
		}
	}
}

// returnBetween reports whether any return lies strictly between lo and hi.
func returnBetween(returns []token.Pos, lo, hi token.Pos) bool {
	for _, r := range returns {
		if r > lo && r < hi {
			return true
		}
	}
	return false
}

// storeCall reports whether call is Pin or Release on a snapshot Store,
// returning the method name. Matching is by receiver type name so fixtures
// can stub the store with local declarations.
func storeCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil || (fn.Name() != "Pin" && fn.Name() != "Release") {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Store" {
		return "", false
	}
	return fn.Name(), true
}
