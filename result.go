package dfpr

import (
	"errors"
	"time"

	"dfpr/internal/core"
	"dfpr/internal/metrics"
)

// ErrCanceled is reported by Rank when its context is canceled (or its
// deadline passes) before the run converges. It is a terminal state
// distinct from algorithm failures: every worker goroutine has exited, the
// engine's ranks remain at the last completed version, and the engine stays
// fully usable. errors.Is(err, ErrCanceled) identifies it through any
// wrapping.
var ErrCanceled = core.ErrCanceled

// ErrClosed is returned by operations on an engine after Close.
var ErrClosed = errors.New("dfpr: engine closed")

// Result reports the outcome of one Rank call.
type Result struct {
	// Seq is the store version the ranks correspond to.
	Seq uint64
	// Advanced is the number of graph versions this call moved the ranks
	// forward by (0 when the engine was already current).
	Advanced int
	// Rebuilt reports that this call fell back to a full static
	// recomputation (history evicted, or an incremental run failed with the
	// static fallback enabled) instead of replaying batches incrementally.
	Rebuilt bool
	// Ranks is the PageRank vector, indexed by vertex. The slice is the
	// caller's to keep. It is nil when the call failed: an aborted run's
	// vector may be mid-iteration and is never exposed.
	Ranks []float64
	// Iterations is the number of iterations of the final run (for
	// lock-free variants: the highest pass index any worker completed, plus
	// one).
	Iterations int
	// Converged reports whether the tolerance was met before MaxIter.
	Converged bool
	// CrashedWorkers is the number of workers that crash-stopped under an
	// injected FaultPlan.
	CrashedWorkers int
	// Elapsed is the wall-clock time of the final run, excluding input
	// construction.
	Elapsed time.Duration
	// BarrierWait is the cumulative time workers spent blocked at iteration
	// barriers (zero for lock-free variants).
	BarrierWait time.Duration
}

// TopK returns the indices of the k highest-ranked vertices, highest first.
func (r *Result) TopK(k int) []int { return metrics.TopK(r.Ranks, k) }

// Snapshot is a point-in-time view of an engine: the latest published graph
// version and the latest computed ranks, which may lag it.
type Snapshot struct {
	// Seq is the latest published graph version.
	Seq uint64
	// RankSeq is the version the Ranks correspond to (≤ Seq; meaningful
	// only once Ranks is non-nil).
	RankSeq uint64
	// N and M are the vertex and edge counts of the latest graph version.
	N, M int
	// Ranks is a copy of the latest computed rank vector, or nil if Rank
	// has not completed yet.
	Ranks []float64
}

// Stats counts how an engine has kept its ranks fresh: Refreshes are
// incremental (or static-algorithm) refreshes, Rebuilds are static
// fallbacks after eviction or failure.
type Stats struct {
	Refreshes, Rebuilds int
}

// FrontierStats describes the Dynamic Frontier affected set after one pass
// of a traced refresh — see Engine.RankTrace.
type FrontierStats struct {
	// Affected is the number of vertices currently marked affected.
	Affected int
	// NotConverged is the number of vertices whose rank has not yet settled
	// within tolerance.
	NotConverged int
}
