package gen

import (
	"reflect"
	"testing"

	"dfpr/internal/graph"
)

func TestRMATDeterministicAndInRange(t *testing.T) {
	a := RMAT(8, 4, 7)
	b := RMAT(8, 4, 7)
	if a.N() != 256 || a.M() == 0 {
		t.Fatalf("n=%d m=%d", a.N(), a.M())
	}
	if !reflect.DeepEqual(a.Snapshot().Edges(nil), b.Snapshot().Edges(nil)) {
		t.Error("same seed produced different graphs")
	}
	c := RMAT(8, 4, 8)
	if reflect.DeepEqual(a.Snapshot().Edges(nil), c.Snapshot().Edges(nil)) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRMATIsSkewed(t *testing.T) {
	d := RMAT(10, 8, 1)
	g := d.Snapshot()
	max := 0
	for v := uint32(0); int(v) < g.N(); v++ {
		if deg := g.OutDeg(v); deg > max {
			max = deg
		}
	}
	if float64(max) < 4*g.AvgOutDeg() {
		t.Errorf("max degree %d not heavy-tailed vs avg %.1f", max, g.AvgOutDeg())
	}
}

func TestPreferentialAttachmentIsSymmetric(t *testing.T) {
	g := PreferentialAttachment(300, 4, 5).Snapshot()
	for _, e := range g.Edges(nil) {
		if !g.HasEdge(e.V, e.U) {
			t.Fatalf("edge (%d,%d) has no reverse", e.U, e.V)
		}
	}
	if g.M() < 300*4 {
		t.Errorf("too few edges: %d", g.M())
	}
}

func TestRoadGridStructure(t *testing.T) {
	d := RoadGrid(20, 20, 0, 1) // no shortcuts: pure lattice
	g := d.Snapshot()
	if g.N() != 400 {
		t.Fatalf("n = %d", g.N())
	}
	// Pure lattice: 2*(rows*(cols-1) + cols*(rows-1)) directed edges.
	want := 2 * (20*19 + 20*19)
	if g.M() != want {
		t.Errorf("m = %d, want %d", g.M(), want)
	}
	// Symmetric.
	for _, e := range g.Edges(nil) {
		if !g.HasEdge(e.V, e.U) {
			t.Fatal("lattice not symmetric")
		}
	}
	// Interior vertex has degree 4.
	if g.OutDeg(21) != 4 {
		t.Errorf("interior degree = %d", g.OutDeg(21))
	}
	// Corner vertex has degree 2.
	if g.OutDeg(0) != 2 {
		t.Errorf("corner degree = %d", g.OutDeg(0))
	}
}

func TestKMerChainLowDegree(t *testing.T) {
	g := KMerChain(1000, 16, 3).Snapshot()
	if avg := g.AvgOutDeg(); avg < 1.5 || avg > 4 {
		t.Errorf("k-mer average degree %.2f outside [1.5,4]", avg)
	}
	// Connected along the spine: every vertex v<n-1 links to v+1.
	for v := uint32(0); v < 999; v++ {
		if !g.HasEdge(v, v+1) {
			t.Fatalf("spine broken at %d", v)
		}
	}
}

func TestTemporalStreamProperties(t *testing.T) {
	stream := TemporalStream(500, 5000, 9)
	if len(stream) != 5000 {
		t.Fatalf("len = %d", len(stream))
	}
	dedup := map[graph.Edge]struct{}{}
	for i, te := range stream {
		if te.At != int64(i) {
			t.Fatal("timestamps not monotone")
		}
		if te.E.U == te.E.V {
			t.Fatal("self-loop in stream")
		}
		if int(te.E.U) >= 500 || int(te.E.V) >= 500 {
			t.Fatal("vertex out of range")
		}
		dedup[te.E] = struct{}{}
	}
	// Duplicate-heavy: |E| must be clearly below |E_T| (Table 1 shape).
	if len(dedup) >= len(stream) {
		t.Errorf("no duplicate edges: %d unique of %d", len(dedup), len(stream))
	}
}

func TestSpecBuildAllClasses(t *testing.T) {
	for _, spec := range SuiteSparse12(0.05) {
		d := spec.Build()
		g := d.Snapshot()
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if g.DeadEnds() != 0 {
			t.Errorf("%s: %d dead ends after Build", spec.Name, g.DeadEnds())
		}
		if g.N() < 64 {
			t.Errorf("%s: too small (%d)", spec.Name, g.N())
		}
	}
}

func TestSuiteSparse12Metadata(t *testing.T) {
	specs := SuiteSparse12(1)
	if len(specs) != 12 {
		t.Fatalf("want 12 specs, got %d", len(specs))
	}
	classes := map[Class]int{}
	for _, s := range specs {
		classes[s.Class]++
	}
	if classes[Web] != 6 || classes[Social] != 2 || classes[Road] != 2 || classes[KMer] != 2 {
		t.Errorf("class mix wrong: %v", classes)
	}
}

func TestTemporal2(t *testing.T) {
	specs := Temporal2(0.02)
	if len(specs) != 2 {
		t.Fatalf("want 2 temporal specs")
	}
	for _, s := range specs {
		stream := s.Build()
		if len(stream) == 0 {
			t.Errorf("%s: empty stream", s.Name)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{Web: "web", Social: "social", Road: "road", KMer: "kmer", Temporal: "temporal"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestScaleChangesSize(t *testing.T) {
	small := SuiteSparse12(0.05)[0].Build()
	big := SuiteSparse12(0.2)[0].Build()
	if big.N() <= small.N() {
		t.Errorf("scale had no effect: %d vs %d", small.N(), big.N())
	}
}
