//go:build !unix

package gio

import "os"

// mapFile on platforms without the unix mmap syscalls reads the whole file;
// LoadCSRMapped still skips text parsing, it just pays one copy.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	return data, false, err
}

// unmapFile releases a mapFile result (no-op for the read fallback).
func unmapFile(data []byte, mapped bool) error { return nil }
