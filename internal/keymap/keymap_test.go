package keymap

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternResolveKeyOf(t *testing.T) {
	m := New()
	if _, ok := m.Resolve("a"); ok {
		t.Fatal("empty map resolved a key")
	}
	if _, ok := m.KeyOf(0); ok {
		t.Fatal("empty map had a key for id 0")
	}
	ids := map[string]uint32{}
	for i, k := range []string{"alice", "bob", "carol", "alice", "bob", "dave"} {
		id := m.Intern(k)
		if want, seen := ids[k]; seen {
			if id != want {
				t.Fatalf("intern %q twice: %d then %d", k, want, id)
			}
		} else {
			ids[k] = id
		}
		_ = i
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
	// Ids are dense in first-mention order.
	for i, k := range []string{"alice", "bob", "carol", "dave"} {
		id, ok := m.Resolve(k)
		if !ok || id != uint32(i) {
			t.Fatalf("Resolve(%q) = %d, %v, want %d", k, id, ok, i)
		}
		back, ok := m.KeyOf(uint32(i))
		if !ok || back != k {
			t.Fatalf("KeyOf(%d) = %q, %v, want %q", i, back, ok, k)
		}
	}
	if _, ok := m.KeyOf(4); ok {
		t.Fatal("KeyOf past the end resolved")
	}
}

// TestPromotion drives the map through many promotions and checks every key
// stays resolvable from both directions throughout.
func TestPromotion(t *testing.T) {
	m := New()
	const total = 5000
	for i := 0; i < total; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if id := m.Intern(k); id != uint32(i) {
			t.Fatalf("Intern(%q) = %d, want %d", k, id, i)
		}
		// Spot-check an early (long promoted) and the freshest key.
		if id, ok := m.Resolve("key-0000"); !ok || id != 0 {
			t.Fatalf("step %d: early key lost", i)
		}
		if got, ok := m.KeyOf(uint32(i)); !ok || got != k {
			t.Fatalf("step %d: fresh key unresolvable: %q %v", i, got, ok)
		}
	}
	if m.Len() != total {
		t.Fatalf("Len = %d, want %d", m.Len(), total)
	}
}

// TestConcurrentInternResolve is the keymap race test: writers interning an
// overlapping key set while readers resolve both directions. Every key must
// get exactly one id, agreed on by all writers.
func TestConcurrentInternResolve(t *testing.T) {
	m := New()
	const keys = 300
	var wg sync.WaitGroup
	got := make([][]uint32, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint32, keys)
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("k%03d", i)
				ids[i] = m.Intern(k)
				// An interned key must resolve from that moment on — even
				// while concurrent interns race promotions past it. This is
				// the regression guard for the probe-then-tail race: Resolve
				// must re-check the promoted state under the lock, or a key
				// promoted between its two probes transiently vanishes.
				if id, ok := m.Resolve(k); !ok || id != ids[i] {
					t.Errorf("just-interned %q unresolvable (%d, %v)", k, id, ok)
					return
				}
			}
			got[w] = ids
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2*keys; i++ {
				if id, ok := m.Resolve(fmt.Sprintf("k%03d", i%keys)); ok {
					if k, ok2 := m.KeyOf(id); !ok2 || k != fmt.Sprintf("k%03d", i%keys) {
						t.Errorf("round-trip of k%03d via %d failed", i%keys, id)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		for w := 1; w < 4; w++ {
			if got[w][i] != got[0][i] {
				t.Fatalf("writers disagree on k%03d: %d vs %d", i, got[0][i], got[w][i])
			}
		}
	}
}

// TestSyncPromotesIdleTail: after Sync, every interned key lives in the
// promoted read state (white-box), so a write-idle map serves all its keys
// lock-free — the tail below the geometric threshold must not linger until
// a next intern that may never come.
func TestSyncPromotesIdleTail(t *testing.T) {
	m := New()
	for _, k := range []string{"alice", "bob", "carol", "dave"} {
		m.Intern(k)
	}
	m.Sync()
	rs := m.read.Load()
	if len(rs.keys) != 4 || len(m.dirtyK) != 0 {
		t.Fatalf("after Sync: promoted %d, tail %d (want 4, 0)", len(rs.keys), len(m.dirtyK))
	}
	for i, k := range []string{"alice", "bob", "carol", "dave"} {
		if id, ok := rs.ids[k]; !ok || id != uint32(i) {
			t.Fatalf("promoted state lost %q", k)
		}
	}
	m.Sync() // idempotent on an empty tail
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
}

// TestSettleSmallMap: Settle always promotes small maps, so any engine of
// ordinary key count is fully lock-free at a write-idle edge.
func TestSettleSmallMap(t *testing.T) {
	m := New()
	for _, k := range []string{"alice", "bob", "carol", "dave"} {
		m.Intern(k)
	}
	m.Settle()
	if rs := m.read.Load(); len(rs.keys) != 4 || len(m.dirtyK) != 0 {
		t.Fatalf("after Settle: promoted %d, tail %d (want 4, 0)", len(rs.keys), len(m.dirtyK))
	}
	m.Settle() // no-op on an empty tail
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestResolveZeroAllocs(t *testing.T) {
	m := New()
	for i := 0; i < 64; i++ {
		m.Intern(fmt.Sprintf("key-%d", i))
	}
	m.Intern("probe") // force one more round so earlier keys promote
	for i := 0; i < 64; i++ {
		m.Intern(fmt.Sprintf("tail-%d", i))
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, ok := m.Resolve("key-7"); !ok {
			t.Fatal("lost key-7")
		}
	}); avg != 0 {
		t.Errorf("Resolve allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, ok := m.KeyOf(7); !ok {
			t.Fatal("lost id 7")
		}
	}); avg != 0 {
		t.Errorf("KeyOf allocates %.1f per call, want 0", avg)
	}
}
