package serve

import (
	"context"
	"net/http"
	"testing"

	"dfpr"
)

// durableServer builds a durable engine over dir, ranks it, and wraps it.
func durableServer(t *testing.T, dir string, engOpts []dfpr.Option, srvOpts ...Option) (*Server, *dfpr.Engine) {
	t.Helper()
	edges := []dfpr.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 0}}
	eng, err := dfpr.New(8, edges, append([]dfpr.Option{dfpr.WithDurability(dir), dfpr.WithThreads(2)}, engOpts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, srvOpts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

func TestServeDurableStats(t *testing.T) {
	dir := t.TempDir()
	s, eng := durableServer(t, dir, nil)
	h := s.Handler()

	code, body, _ := do(t, h, "POST", "/v1/apply?wait=ranked", `{"ins":[{"u":4,"v":0}]}`, nil)
	if code != http.StatusOK {
		t.Fatalf("apply: %d %v", code, body)
	}
	// Flush is an fsync barrier, so last_fsync must be populated after it.
	if err := eng.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	code, body, _ = do(t, h, "GET", "/v1/stats", "", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if body["durable"] != true {
		t.Fatalf("stats on durable engine: %v", body)
	}
	if body["wal_seq"].(float64) < 1 {
		t.Fatalf("wal_seq not advanced: %v", body["wal_seq"])
	}
	if _, ok := body["checkpoint_version"].(float64); !ok && body["checkpoint_version"] != nil {
		t.Fatalf("checkpoint_version malformed: %v", body["checkpoint_version"])
	}
	if ls, ok := body["last_fsync"].(string); !ok || ls == "" {
		t.Fatalf("last_fsync missing after flush: %v", body["last_fsync"])
	}
	if body["recovering"] == true || body["durability_degraded"] == true {
		t.Fatalf("healthy engine reports trouble: %v", body)
	}

	code, body, _ = do(t, h, "GET", "/v1/healthz", "", nil)
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
}

func TestServeRecoveringShedsWrites(t *testing.T) {
	dir := t.TempDir()
	// Build durable state whose WAL tail extends past the (rank-less, seq-0)
	// seed checkpoint, then close. The restarted engine replays the tail and
	// stays "recovering" until a Rank catches the tip.
	{
		s, eng := durableServer(t, dir, nil)
		code, body, _ := do(t, s.Handler(), "POST", "/v1/apply?wait=ranked", `{"ins":[{"u":5,"v":0},{"u":6,"v":5}]}`, nil)
		if code != http.StatusOK {
			t.Fatalf("apply: %d %v", code, body)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}

	eng, err := dfpr.New(0, nil, dfpr.WithDurability(dir), dfpr.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if !eng.Recovering() {
		t.Fatal("restarted engine with a replayed tail is not recovering")
	}
	s, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	code, body, _ := do(t, h, "GET", "/v1/healthz", "", nil)
	if code != http.StatusOK || body["status"] != "recovering" {
		t.Fatalf("healthz during recovery: %d %v", code, body)
	}
	code, body, hdr := do(t, h, "POST", "/v1/apply", `{"ins":[{"u":1,"v":3}]}`, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("apply during recovery: %d %v, want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("recovery 503 carries no Retry-After")
	}
	if body["error"] == nil {
		t.Fatalf("recovery 503 is not a JSON error: %v", body)
	}
	code, body, _ = do(t, h, "GET", "/v1/stats", "", nil)
	if code != http.StatusOK || body["recovering"] != true {
		t.Fatalf("stats during recovery: %d %v", code, body)
	}

	// A rank refresh catches the replayed tip and reopens the write path.
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body, _ = do(t, h, "GET", "/v1/healthz", "", nil)
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz after recovery: %d %v", code, body)
	}
	code, body, _ = do(t, h, "POST", "/v1/apply", `{"ins":[{"u":1,"v":3}]}`, nil)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("apply after recovery: %d %v", code, body)
	}
}

func TestServeQueueFullRetryAfter(t *testing.T) {
	// An engine whose queue bound any 2-edge batch exceeds: the rejection is
	// immediate and deterministic.
	eng, err := dfpr.New(8, []dfpr.Edge{{U: 0, V: 1}}, dfpr.WithIngestQueue(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Rank(context.Background()); err != nil {
		t.Fatal(err)
	}
	s, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	code, body, hdr := do(t, s.Handler(), "POST", "/v1/apply", `{"ins":[{"u":1,"v":2},{"u":2,"v":3}]}`, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("oversized submission: %d %v, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
}

// TestRetryAfterDerivation pins the shed-path hints: both scale with the
// actual pressure (queue fullness, replay distance) instead of a constant,
// and both stay inside the 1..8s band clients can act on.
func TestRetryAfterDerivation(t *testing.T) {
	queueCases := []struct {
		queued, bound int
		want          string
	}{
		{0, 0, "1"},     // unbounded queue: nothing to derive from
		{500, 0, "1"},   // unbounded queue with depth: still the floor
		{0, 100, "1"},   // empty queue (bounce off an oversized batch)
		{25, 100, "1"},  // quarter full
		{26, 100, "2"},  // just past a quarter: ceil kicks in
		{50, 100, "2"},  // half full
		{100, 100, "4"}, // pressed against the bound
		{150, 100, "6"}, // backlogged past the bound
		{300, 100, "8"}, // clamp: the hint stays actionable
	}
	for _, tc := range queueCases {
		if got := retryAfterQueue(tc.queued, tc.bound); got != tc.want {
			t.Errorf("retryAfterQueue(%d, %d) = %q, want %q", tc.queued, tc.bound, got, tc.want)
		}
	}
	recoveryCases := []struct {
		behind uint64
		want   string
	}{
		{0, "1"},
		{255, "1"},
		{256, "2"},
		{1024, "5"},
		{100000, "8"}, // clamp
	}
	for _, tc := range recoveryCases {
		if got := retryAfterRecovery(tc.behind); got != tc.want {
			t.Errorf("retryAfterRecovery(%d) = %q, want %q", tc.behind, got, tc.want)
		}
	}
}

func TestServeDenseStatsOmitDurability(t *testing.T) {
	s, _ := testServer(t)
	_, body, _ := do(t, s.Handler(), "GET", "/v1/stats", "", nil)
	for _, k := range []string{"durable", "wal_seq", "last_fsync", "durability_degraded"} {
		if _, present := body[k]; present {
			t.Fatalf("non-durable stats leak %q: %v", k, body[k])
		}
	}
}
