package harness

import (
	"fmt"
	"time"

	"dfpr/internal/core"
	"dfpr/internal/fault"
	"dfpr/internal/topk"
)

// delayScale translates the paper's fault parameters to laptop scale. The
// paper injects sleeps with per-vertex probability 1e-9…1e-6 on graphs of
// ~1e7 vertices — i.e. an *expected 0.01…10 sleeps per iteration* — with
// durations of 50…200 ms, "sizeable relative to the iteration time". We
// preserve those two intensive quantities: expected sleeps per iteration
// E ∈ {0.01, 0.1, 1, 10} mapped to per-vertex probability E/|V|, and delay
// durations scaled to a similar multiple of our (much shorter) iteration
// time.
var delayPerIter = []float64{0.01, 0.1, 1, 10}

// delayDursFor returns the three delay durations. Full runs use 1×, 2×, 4×
// of baseDelay (default 1 ms ≈ a large fraction of an iteration at our
// scale, like the paper's 50/100/200 ms at its scale).
func delayDursFor(o Options) []time.Duration {
	base := time.Millisecond
	if o.Quick {
		return []time.Duration{base}
	}
	return []time.Duration{base, 2 * base, 4 * base}
}

// Fig8 regenerates Figure 8: DFBB vs DFLF on batch 1e-4·|E| under random
// thread delays swept over delay probability and duration, plus the error of
// the delayed DFLF runs.
func Fig8(o Options) []Section {
	o = o.norm()
	durs := delayDursFor(o)
	probs := delayPerIter
	if o.Quick {
		probs = []float64{0.1, 1}
	}
	t := topk.NewTable("Delays/iter", "Duration", "DFBB", "DFLF", "DFLF speedup", "DFLF err")
	type cell struct {
		bb, lf []float64
		err    float64
	}
	cells := map[string]*cell{}
	keyOf := func(p float64, d time.Duration) string { return fmt.Sprintf("%g|%s", p, d) }
	for _, spec := range specsFor(o) {
		p := prepare(spec, o)
		cfg := p.cfg
		_, in, ref := makeBatch(p, 1e-4, o.Seed+spec.Seed, true)
		n := float64(in.GNew.N())
		for _, expect := range probs {
			for _, dd := range durs {
				c := cfg
				c.Fault = fault.Plan{DelayProb: expect / n, DelayDur: dd, Seed: o.Seed}
				bbT, _ := timeRun(core.AlgoDFBB, in, c, o.Reps)
				lfT, lfRes := timeRun(core.AlgoDFLF, in, c, o.Reps)
				k := keyOf(expect, dd)
				if cells[k] == nil {
					cells[k] = &cell{}
				}
				cells[k].bb = append(cells[k].bb, float64(bbT))
				cells[k].lf = append(cells[k].lf, float64(lfT))
				if e := topk.LInf(lfRes.Ranks, ref); e > cells[k].err {
					cells[k].err = e
				}
			}
		}
	}
	for _, expect := range probs {
		for _, dd := range durs {
			c := cells[keyOf(expect, dd)]
			bb, lf := topk.GeoMean(c.bb), topk.GeoMean(c.lf)
			t.AddRow(fmt.Sprintf("%g", expect), dd,
				time.Duration(bb), time.Duration(lf),
				fmt.Sprintf("%.2f×", safeRatio(bb, lf)), c.err)
		}
	}
	return []Section{{
		Title: "Figure 8: DFBB vs DFLF under random thread delays (batch 1e-4·|E|)",
		Note: "Delays/iter is the expected number of injected sleeps per iteration (the paper's probability×|V|). " +
			"Expected shape: DFBB degrades as delays become common (stragglers hold every barrier) while DFLF stays nearly flat — paper reports 2.0–3.5× at the highest probability. Error stays within the fault-free band.",
		Table: t,
	}}
}

// Fig9 regenerates Figure 9: DFLF runtime (relative to the crash-free run)
// and error as 0 … T-1 of T workers crash-stop at random points during the
// computation. Barrier-based DFBB cannot complete with any crash (the
// harness verifies the deadlock detector fires) — shown as DNF.
func Fig9(o Options) []Section {
	o = o.norm()
	// The paper crashes up to 56 of 64 threads. Keep the pool at ≥ 8 workers
	// so the crash-fraction sweep has room even on small hosts; goroutine
	// workers beyond the core count still exercise the algorithm's crash
	// paths faithfully.
	workers := o.Threads
	if workers < 8 {
		workers = 8
	}
	crashCounts := []int{0, 1, 2, 4}
	for k := 8; k < workers; k += 8 {
		crashCounts = append(crashCounts, k)
	}
	if o.Quick {
		crashCounts = []int{0, 1, workers / 2}
	}
	t := topk.NewTable("Crashed", "DFLF runtime", "Relative", "Max err", "DFBB")
	type row struct {
		times []float64
		err   float64
		bbDNF bool
	}
	rows := make([]row, len(crashCounts))
	for _, spec := range specsFor(o) {
		p := prepare(spec, o)
		cfg := p.cfg
		cfg.Threads = workers
		_, in, ref := makeBatch(p, 1e-4, o.Seed+spec.Seed, true)
		// Crash "at a random point in time during PageRank computation":
		// thresholds drawn over roughly one pass of per-worker work on the
		// affected set, so the crash reliably lands mid-computation even for
		// runs where DF keeps the processed-vertex count small.
		horizon := in.GNew.N() / (workers * 4)
		if horizon < 1 {
			horizon = 1
		}
		for ci, k := range crashCounts {
			c := cfg
			c.Fault = fault.Plan{CrashWorkers: fault.CrashSet(k, workers), CrashHorizon: horizon, Seed: o.Seed + int64(ci)}
			dur, res := timeRun(core.AlgoDFLF, in, c, o.Reps)
			rows[ci].times = append(rows[ci].times, float64(dur))
			if e := topk.LInf(res.Ranks, ref); e > rows[ci].err {
				rows[ci].err = e
			}
			if k > 0 && !rows[ci].bbDNF {
				// The DNF check asserts "any crash deadlocks the barrier",
				// so the crash point is pinned to the first work chunk
				// (CrashHorizon 0) — a randomly-timed crash can land after
				// a lightly-scheduled worker's last chunk and let the run
				// finish, which says nothing about barrier semantics.
				cbb := c
				cbb.Fault = fault.Plan{CrashWorkers: fault.CrashSet(k, workers), Seed: c.Fault.Seed}
				bb := core.Run(core.AlgoDFBB, in, cbb)
				rows[ci].bbDNF = bb.Err != nil
			}
		}
	}
	base := topk.GeoMean(rows[0].times)
	for ci, k := range crashCounts {
		g := topk.GeoMean(rows[ci].times)
		bbCell := "ok"
		if k > 0 {
			if rows[ci].bbDNF {
				bbCell = "DNF (deadlock)"
			} else {
				bbCell = "unexpected finish"
			}
		}
		t.AddRow(k, time.Duration(g), fmt.Sprintf("%.2f×", safeRatio(g, base)), rows[ci].err, bbCell)
	}
	return []Section{{
		Title: fmt.Sprintf("Figure 9: DFLF under crash-stop failures (%d workers)", workers),
		Note: "Expected shape: graceful slowdown as crashes mount (paper: ~40% of full speed with 56/64 crashed), error flat; " +
			"DFBB deadlocks with any crash — our barrier reports it deterministically instead of hanging.",
		Table: t,
	}}
}
