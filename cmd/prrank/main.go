// Command prrank computes PageRanks of an edge-list graph with any of the
// eight algorithm variants, through the public dfpr.Engine API. For the
// dynamic variants (ND/DT/DF) a batch file of "+ u v" / "- u v" lines
// describes the update: prrank first converges ranks on the pre-update
// graph, applies the batch, then refreshes with the requested dynamic
// algorithm — printing timing for both phases so the incremental saving is
// visible. Ctrl-C cancels a converging run cleanly via context.
//
// Usage:
//
//	prgen -graph asia_osm > g.el
//	prgen -graph asia_osm -batch 1e-4 > u.batch
//	prrank -in g.el -algo staticlf -top 5
//	prrank -in g.el -batch u.batch -algo DFLF -top 5
//	prrank -keyed -in follows.kel -top 5     # string keys: 'alice bob' lines
//
// With -keyed, -in is a keyed edge list whose endpoints are arbitrary
// string keys; the engine owns the key→id compaction (dfpr.Open) and the
// top-k report prints keys instead of dense ids.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dfpr"
	"dfpr/internal/exutil"
	"dfpr/internal/gio"
	"dfpr/internal/topk"
)

func main() {
	var (
		in        = flag.String("in", "", "graph file: edge list ('u v' per line) or MatrixMarket (.mtx)")
		batchFile = flag.String("batch", "", "batch update file ('+ u v' / '- u v' lines)")
		algoName  = flag.String("algo", "StaticLF", "algorithm (case-insensitive): StaticBB|StaticLF|NDBB|NDLF|DTBB|DTLF|DFBB|DFLF")
		threads   = flag.Int("threads", 0, "worker goroutines (0 = NumCPU)")
		alpha     = flag.Float64("alpha", dfpr.DefaultAlpha, "damping factor")
		tol       = flag.Float64("tol", dfpr.DefaultTolerance, "iteration tolerance (L∞)")
		top       = flag.Int("top", 10, "print the k highest-ranked vertices (0 = all ranks)")
		keyed     = flag.Bool("keyed", false, "treat -in as a keyed edge list ('fromKey toKey' per line) and report keys")
	)
	flag.Parse()
	if *in == "" {
		fatalf("missing -in edge list")
	}
	algo, err := dfpr.ParseAlgorithm(*algoName)
	if err != nil {
		fatalf("%v", err)
	}

	// A converging run on a large graph can take a while; Ctrl-C aborts it
	// through the context instead of killing the process mid-write.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	opts := []dfpr.Option{
		dfpr.WithAlgorithm(algo),
		dfpr.WithAlpha(*alpha),
		dfpr.WithTolerance(*tol),
		dfpr.WithThreads(*threads),
	}
	var eng *dfpr.Engine
	if *keyed {
		kedges, kerr := exutil.LoadKeyEdges(*in)
		if kerr != nil {
			fatalf("loading %s: %v", *in, kerr)
		}
		if eng, err = dfpr.Open(opts...); err != nil {
			fatalf("%v", err)
		}
		if _, err = eng.ApplyKeyed(ctx, nil, kedges); err != nil {
			fatalf("applying %s: %v", *in, err)
		}
	} else {
		n, edges, lerr := exutil.LoadGraph(*in)
		if lerr != nil {
			fatalf("loading %s: %v", *in, lerr)
		}
		eng, err = dfpr.New(n, edges, opts...)
		if err != nil {
			fatalf("%v", err)
		}
	}

	var res *dfpr.Result
	if *keyed {
		if *batchFile != "" {
			fatalf("-batch carries dense ids; keyed updates arrive as keyed edge lists")
		}
		res, err = eng.Rank(ctx)
		if err != nil {
			fatalf("%s failed: %v", algo, err)
		}
	} else if algo.Dynamic() {
		pre, err := eng.Rank(ctx)
		if err != nil {
			fatalf("baseline ranking failed: %v", err)
		}
		fmt.Printf("baseline: static pre-update ranking converged in %d iterations (%s)\n",
			pre.Iterations, topk.FormatDur(pre.Elapsed))
		var del, ins []dfpr.Edge
		if *batchFile != "" {
			del, ins, err = loadBatch(*batchFile)
			if err != nil {
				fatalf("loading %s: %v", *batchFile, err)
			}
		}
		if _, err := eng.Apply(ctx, del, ins); err != nil {
			fatalf("applying batch: %v", err)
		}
		res, err = eng.Rank(ctx)
		if err != nil {
			fatalf("%s failed: %v", algo, err)
		}
	} else {
		res, err = eng.Rank(ctx)
		if err != nil {
			if errors.Is(err, dfpr.ErrCanceled) {
				fatalf("%s canceled", algo)
			}
			fatalf("%s failed: %v", algo, err)
		}
	}

	view := res.View
	fmt.Printf("%s: n=%d m=%d iterations=%d converged=%v elapsed=%s\n",
		algo, view.N(), view.M(), res.Iterations, res.Converged, topk.FormatDur(res.Elapsed))

	switch {
	case *top > 0 && *keyed:
		for rank, e := range view.TopKKeys(*top) {
			fmt.Printf("#%-3d %-24s %.6e\n", rank+1, e.Key, e.Score)
		}
	case *top > 0:
		for rank, e := range view.TopK(*top) {
			fmt.Printf("#%-3d vertex %-10d %.6e\n", rank+1, e.V, e.Score)
		}
	case *keyed:
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for v, r := range view.Scores() {
			key, _ := view.KeyOf(v)
			fmt.Fprintf(w, "%s %.12e\n", key, r)
		}
	default:
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for v, r := range view.Scores() {
			fmt.Fprintf(w, "%d %.12e\n", v, r)
		}
	}
}

func loadBatch(path string) (del, ins []dfpr.Edge, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	gdel, gins, err := gio.ReadBatch(f)
	if err != nil {
		return nil, nil, err
	}
	return exutil.Convert(gdel), exutil.Convert(gins), nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "prrank: "+format+"\n", args...)
	os.Exit(2)
}
